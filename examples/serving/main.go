// Serving: run the HTTP clustering service in-process and drive it the way
// a real client fleet would — batched ingestion of a live feed over POST
// /v1/ingest, nearest-center queries against consistent snapshots over POST
// /v1/assign, introspection via GET /v1/centers and /v1/stats — then shut
// it down gracefully, restart it from its checkpoint, and confirm the new
// process resumes with the identical clustering before comparing against
// the batch baseline that got to see all points at once.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"kcenter"
)

const (
	k       = 10
	batches = 40
	batch   = 500
)

func postJSON(url string, req any, resp any) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode < 300 {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			return r.StatusCode, err
		}
	}
	return r.StatusCode, nil
}

type pointsBody struct {
	Points [][]float64 `json:"points"`
}

func main() {
	// The service: k centers, 4 ingestion shards, checkpointing enabled —
	// mounted on a loopback listener exactly as `kcenter serve -checkpoint`
	// would mount it. The checkpoint file is what the restart walkthrough
	// below resumes from.
	dir, err := os.MkdirTemp("", "kcenter-serving-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "serve.ckpt")
	srv, err := kcenter.NewServer(k, kcenter.ServerOptions{Shards: 4, CheckpointPath: ckpt})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("clustering service on %s (k=%d, 4 shards)\n", base, k)

	// The "live feed": the paper's GAU family, pushed in client batches.
	feed := kcenter.Clustered(batches*batch, k, 1)
	for b := 0; b < batches; b++ {
		pts := make([][]float64, batch)
		for i := range pts {
			pts[i] = feed.At(b*batch + i)
		}
		code, err := postJSON(base+"/v1/ingest", pointsBody{Points: pts}, nil)
		if err != nil || code != http.StatusAccepted {
			log.Fatalf("ingest batch %d: code %d err %v", b, code, err)
		}
	}

	// Live queries while ingestion drains: each response is computed
	// against one consistent snapshot, identified by its version.
	var assigned struct {
		Snapshot struct {
			Version  uint64  `json:"version"`
			Centers  int     `json:"centers"`
			Radius   float64 `json:"radius"`
			Ingested int64   `json:"ingested"`
		} `json:"snapshot"`
		Assignments []struct {
			Center   int     `json:"center"`
			Distance float64 `json:"distance"`
		} `json:"assignments"`
	}
	queries := pointsBody{Points: [][]float64{feed.At(0), feed.At(batch), feed.At(2 * batch)}}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, err := postJSON(base+"/v1/assign", queries, &assigned)
		if err != nil {
			log.Fatal(err)
		}
		if code == http.StatusOK {
			break
		}
		// 409 is the cold-start window (nothing drained into a shard yet);
		// anything else is a real failure.
		if code != http.StatusConflict {
			log.Fatalf("assign: unexpected status %d", code)
		}
		if time.Now().After(deadline) {
			log.Fatal("assign: still 409 after 30s")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("assign against snapshot v%d: %d centers cover %d ingested points within %.3f\n",
		assigned.Snapshot.Version, assigned.Snapshot.Centers,
		assigned.Snapshot.Ingested, assigned.Snapshot.Radius)
	for i, a := range assigned.Assignments {
		fmt.Printf("  query %d -> center %d (distance %.3f)\n", i, a.Center, a.Distance)
	}

	// Service counters: ingest/assign traffic and the distance-evaluation
	// count the pruned assignment kernels actually spent.
	var stats struct {
		IngestedPoints int64 `json:"ingested_points"`
		AssignPoints   int64 `json:"assign_points"`
		DistEvals      int64 `json:"dist_evals"`
		SnapshotBuilds int64 `json:"snapshot_builds"`
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: ingested=%d assigned=%d dist-evals=%d snapshot-builds=%d\n",
		stats.IngestedPoints, stats.AssignPoints, stats.DistEvals, stats.SnapshotBuilds)

	// Graceful shutdown: HTTP server first (no requests in flight), then
	// the service — draining queued batches, flushing the final merge and
	// writing the final checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	final, err := srv.Shutdown(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %d centers over %d points, certified %.4f <= OPT <= %.4f (%g-approx)\n",
		len(final.Centers), final.Ingested, final.LowerBound, final.Radius, final.ApproxFactor)

	// Restart walkthrough: a new process (here, a new server value) pointed
	// at the same checkpoint resumes the clustering instead of starting
	// empty — same ingested count, same snapshot version, and queries work
	// immediately with no re-ingestion. This is what `kcenter serve
	// -checkpoint` does on boot after a crash or a deploy.
	srv2, err := kcenter.NewServer(k, kcenter.ServerOptions{Shards: 4, CheckpointPath: ckpt})
	if err != nil {
		log.Fatal(err)
	}
	rs := srv2.Restored()
	if rs == nil {
		log.Fatal("restart: no checkpoint was restored")
	}
	fmt.Printf("restart: resumed %d centers over %d points (version %d, checkpoint age %v)\n",
		rs.Centers, rs.Ingested, rs.CentersVersion, time.Since(rs.Created).Round(time.Millisecond))
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	base2 := "http://" + ln2.Addr().String()
	var resumed struct {
		Snapshot struct {
			Version  uint64 `json:"version"`
			Ingested int64  `json:"ingested"`
		} `json:"snapshot"`
	}
	if code, err := postJSON(base2+"/v1/assign", queries, &resumed); err != nil || code != http.StatusOK {
		log.Fatalf("restart assign: code %d err %v (no warm-up loop needed: the restored server is never cold)", code, err)
	}
	fmt.Printf("restart: first assign answered from snapshot v%d over %d points, zero re-ingestion\n",
		resumed.Snapshot.Version, resumed.Snapshot.Ingested)
	if err := hs2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := srv2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	// Batch comparison, as in examples/streaming: the serving layer never
	// materialized the feed; the baseline gets to.
	gon, err := kcenter.Gonzalez(feed, k)
	if err != nil {
		log.Fatal(err)
	}
	realized, err := kcenter.RadiusPoints(feed, final.Centers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized serving radius %.4f vs batch GON %.4f -> %.2fx while serving live traffic\n",
		realized, gon.Radius, realized/gon.Radius)
}
