// Serving: run the HTTP clustering service in-process and drive it the way
// a real client fleet would — batched ingestion of a live feed over POST
// /v1/ingest, nearest-center queries against consistent snapshots over POST
// /v1/assign, introspection via GET /v1/centers and /v1/stats, a telemetry
// scrape via GET /metrics — then shut
// it down gracefully, restart it from its checkpoint, and confirm the new
// process resumes with the identical clustering. A second walkthrough runs
// the server multi-tenant: two tenants created lazily by their first
// ingest, routed by header, each with its own k, isolated centers and
// per-tenant checkpoint file. Finally the serving result is compared
// against the batch baseline that got to see all points at once.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"kcenter"
)

const (
	k       = 10
	batches = 40
	batch   = 500
)

func postJSON(url string, req any, resp any) (int, error) {
	return postJSONHeaders(url, nil, req, resp)
}

// postJSONHeaders posts with extra headers — how a client routes to a
// tenant (X-Kcenter-Tenant) or pins a new tenant's shape (X-Kcenter-K).
func postJSONHeaders(url string, headers map[string]string, req any, resp any) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode < 300 {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			return r.StatusCode, err
		}
	}
	return r.StatusCode, nil
}

// postJSONRetry posts like postJSONHeaders but rides out 429 load shedding
// the way a production client should: honor the server's Retry-After hint
// when present, otherwise back off exponentially with jitter, and give up
// after maxAttempts so a real outage surfaces as an error instead of an
// unbounded hang. Any status other than 429 returns immediately — retrying
// a 4xx would only repeat the mistake.
func postJSONRetry(url string, headers map[string]string, req, resp any, maxAttempts int) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	backoff := 25 * time.Millisecond
	const backoffCap = 2 * time.Second
	for attempt := 1; ; attempt++ {
		hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
		if err != nil {
			return 0, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		for k, v := range headers {
			hreq.Header.Set(k, v)
		}
		r, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return 0, err
		}
		if r.StatusCode != http.StatusTooManyRequests {
			defer r.Body.Close()
			if resp != nil && r.StatusCode < 300 {
				if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
					return r.StatusCode, err
				}
			}
			return r.StatusCode, nil
		}
		retryAfter := r.Header.Get("Retry-After")
		r.Body.Close()
		if attempt >= maxAttempts {
			return r.StatusCode, fmt.Errorf("still shedding after %d attempts", maxAttempts)
		}
		wait := backoff
		if s, perr := strconv.Atoi(retryAfter); perr == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		// Jitter to wait/2 .. wait*3/2 so a fleet of shed clients does not
		// return in lockstep and re-trip the watermark together.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait)+1))
		time.Sleep(wait)
		if backoff < backoffCap {
			backoff *= 2
		}
	}
}

type pointsBody struct {
	Points [][]float64 `json:"points"`
}

func main() {
	// The service: k centers, 4 ingestion shards, checkpointing enabled —
	// mounted on a loopback listener exactly as `kcenter serve -checkpoint`
	// would mount it. The checkpoint file is what the restart walkthrough
	// below resumes from.
	dir, err := os.MkdirTemp("", "kcenter-serving-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "serve.ckpt")
	srv, err := kcenter.NewServer(k, kcenter.ServerOptions{Shards: 4, CheckpointPath: ckpt, Telemetry: true})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("clustering service on %s (k=%d, 4 shards)\n", base, k)

	// Liveness/readiness, the way an orchestrator would probe it: /v1/healthz
	// is cheap, always answers while the process lives, and reports degraded
	// tenants without failing readiness (a quarantined tenant is a contained
	// fault, not a dead server).
	var hz struct {
		Status string `json:"status"`
		Live   bool   `json:"live"`
		Ready  bool   `json:"ready"`
	}
	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		log.Fatal(err)
	}
	hresp.Body.Close()
	fmt.Printf("healthz: status=%s live=%v ready=%v\n", hz.Status, hz.Live, hz.Ready)

	// The "live feed": the paper's GAU family, pushed in client batches
	// through the retrying client — under overload the server sheds with
	// 429 + Retry-After rather than queueing unboundedly, and the client's
	// job is to honor that hint, back off with jitter, and resubmit.
	feed := kcenter.Clustered(batches*batch, k, 1)
	for b := 0; b < batches; b++ {
		pts := make([][]float64, batch)
		for i := range pts {
			pts[i] = feed.At(b*batch + i)
		}
		code, err := postJSONRetry(base+"/v1/ingest", nil, pointsBody{Points: pts}, nil, 8)
		if err != nil || code != http.StatusAccepted {
			log.Fatalf("ingest batch %d: code %d err %v", b, code, err)
		}
	}

	// Live queries while ingestion drains: each response is computed
	// against one consistent snapshot, identified by its version.
	var assigned struct {
		Snapshot struct {
			Version  uint64  `json:"version"`
			Centers  int     `json:"centers"`
			Radius   float64 `json:"radius"`
			Ingested int64   `json:"ingested"`
		} `json:"snapshot"`
		Assignments []struct {
			Center   int     `json:"center"`
			Distance float64 `json:"distance"`
		} `json:"assignments"`
	}
	queries := pointsBody{Points: [][]float64{feed.At(0), feed.At(batch), feed.At(2 * batch)}}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, err := postJSON(base+"/v1/assign", queries, &assigned)
		if err != nil {
			log.Fatal(err)
		}
		if code == http.StatusOK {
			break
		}
		// 409 is the cold-start window (nothing drained into a shard yet);
		// anything else is a real failure.
		if code != http.StatusConflict {
			log.Fatalf("assign: unexpected status %d", code)
		}
		if time.Now().After(deadline) {
			log.Fatal("assign: still 409 after 30s")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("assign against snapshot v%d: %d centers cover %d ingested points within %.3f\n",
		assigned.Snapshot.Version, assigned.Snapshot.Centers,
		assigned.Snapshot.Ingested, assigned.Snapshot.Radius)
	for i, a := range assigned.Assignments {
		fmt.Printf("  query %d -> center %d (distance %.3f)\n", i, a.Center, a.Distance)
	}

	// Service counters: ingest/assign traffic and the distance-evaluation
	// count the pruned assignment kernels actually spent.
	var stats struct {
		IngestedPoints int64 `json:"ingested_points"`
		AssignPoints   int64 `json:"assign_points"`
		DistEvals      int64 `json:"dist_evals"`
		SnapshotBuilds int64 `json:"snapshot_builds"`
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: ingested=%d assigned=%d dist-evals=%d snapshot-builds=%d\n",
		stats.IngestedPoints, stats.AssignPoints, stats.DistEvals, stats.SnapshotBuilds)

	// The same numbers — plus the latency histograms telemetry recorded for
	// the traffic above — as a Prometheus scrape. Aggregate families are
	// separately named from the per-tenant ones, so sum() never double
	// counts across the two granularities.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.HasPrefix(line, "kcenter_request_duration_seconds_count") ||
			strings.HasPrefix(line, "kcenter_tenant_ingested_points_total") {
			fmt.Printf("metrics: %s\n", line)
		}
	}

	// Graceful shutdown: HTTP server first (no requests in flight), then
	// the service — draining queued batches, flushing the final merge and
	// writing the final checkpoint.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	final, err := srv.Shutdown(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %d centers over %d points, certified %.4f <= OPT <= %.4f (%g-approx)\n",
		len(final.Centers), final.Ingested, final.LowerBound, final.Radius, final.ApproxFactor)

	// Restart walkthrough: a new process (here, a new server value) pointed
	// at the same checkpoint resumes the clustering instead of starting
	// empty — same ingested count, same snapshot version, and queries work
	// immediately with no re-ingestion. This is what `kcenter serve
	// -checkpoint` does on boot after a crash or a deploy.
	srv2, err := kcenter.NewServer(k, kcenter.ServerOptions{Shards: 4, CheckpointPath: ckpt})
	if err != nil {
		log.Fatal(err)
	}
	rs := srv2.Restored()
	if rs == nil {
		log.Fatal("restart: no checkpoint was restored")
	}
	fmt.Printf("restart: resumed %d centers over %d points (version %d, checkpoint age %v)\n",
		rs.Centers, rs.Ingested, rs.CentersVersion, time.Since(rs.Created).Round(time.Millisecond))
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	base2 := "http://" + ln2.Addr().String()
	var resumed struct {
		Snapshot struct {
			Version  uint64 `json:"version"`
			Ingested int64  `json:"ingested"`
		} `json:"snapshot"`
	}
	if code, err := postJSON(base2+"/v1/assign", queries, &resumed); err != nil || code != http.StatusOK {
		log.Fatalf("restart assign: code %d err %v (no warm-up loop needed: the restored server is never cold)", code, err)
	}
	fmt.Printf("restart: first assign answered from snapshot v%d over %d points, zero re-ingestion\n",
		resumed.Snapshot.Version, resumed.Snapshot.Ingested)
	if err := hs2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := srv2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	// Multi-tenant walkthrough: one server multiplexing independent
	// clusterings. Tenants are created lazily on first ingest contact
	// (below the -tenants cap), routed by the X-Kcenter-Tenant header (or
	// a "tenant" body field), each with its own k, shards, dimension,
	// ingest queue, snapshot cache — and, with -checkpoint, its own
	// <path>.d/<name>.ckpt file that restores independently. Requests that
	// name no tenant keep hitting the implicit default tenant with the
	// exact single-tenant wire format above.
	srv3, err := kcenter.NewServer(k, kcenter.ServerOptions{
		Shards: 2, MaxTenants: 4, DefaultK: 4,
		CheckpointPath: filepath.Join(dir, "tenants.ckpt"),
	})
	if err != nil {
		log.Fatal(err)
	}
	ln3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs3 := &http.Server{Handler: srv3.Handler()}
	go hs3.Serve(ln3)
	base3 := "http://" + ln3.Addr().String()
	fmt.Printf("multi-tenant service on %s (max 4 tenants)\n", base3)

	// Two tenants over disjoint regions; "eu" pins its own k with the
	// X-Kcenter-K header, "us" takes the -default-k value (4).
	for t, dx := range map[string]float64{"eu": 0, "us": 5000} {
		pts := make([][]float64, batch)
		for i := range pts {
			p := feed.At(i)
			pts[i] = []float64{p[0] + dx, p[1]}
		}
		hdr := map[string]string{"X-Kcenter-Tenant": t}
		if t == "eu" {
			hdr["X-Kcenter-K"] = "3"
		}
		code, err := postJSONRetry(base3+"/v1/ingest", hdr, pointsBody{Points: pts}, nil, 8)
		if err != nil || code != http.StatusAccepted {
			log.Fatalf("tenant %s ingest: code %d err %v", t, code, err)
		}
	}
	// The registry: every tenant's shape, counters and checkpoint file.
	var reg struct {
		MaxTenants int `json:"max_tenants"`
		Tenants    []struct {
			Name     string `json:"name"`
			Status   string `json:"status"`
			K        int    `json:"k"`
			Ingested int64  `json:"ingested_points"`
		} `json:"tenants"`
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base3 + "/v1/tenants")
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&reg)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		var drained int64
		for _, ti := range reg.Tenants {
			drained += ti.Ingested
		}
		if drained == 2*batch {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("tenants: feeds never drained")
		}
		time.Sleep(time.Millisecond)
	}
	for _, ti := range reg.Tenants {
		fmt.Printf("tenant %-8s status=%s k=%d ingested=%d\n", ti.Name, ti.Status, ti.K, ti.Ingested)
	}
	// Per-tenant assignment: the same query point lands on each tenant's
	// own centers — the clusterings are fully isolated.
	for _, t := range []string{"eu", "us"} {
		var ar struct {
			Snapshot struct {
				Centers int     `json:"centers"`
				Radius  float64 `json:"radius"`
			} `json:"snapshot"`
		}
		code, err := postJSONHeaders(base3+"/v1/assign",
			map[string]string{"X-Kcenter-Tenant": t},
			pointsBody{Points: [][]float64{{0, 0}}}, &ar)
		if err != nil || code != http.StatusOK {
			log.Fatalf("tenant %s assign: code %d err %v", t, code, err)
		}
		fmt.Printf("tenant %-8s serves %d centers within radius %.3f\n", t, ar.Snapshot.Centers, ar.Snapshot.Radius)
	}
	if err := hs3.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	// Shutdown checkpoints every tenant; each lands in its own file under
	// tenants.ckpt.d/, restorable independently (a corrupt one would
	// quarantine only that tenant on the next boot).
	if _, err := srv3.Shutdown(ctx); err != nil && !errors.Is(err, kcenter.ErrNothingIngested) {
		log.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "tenants.ckpt.d"))
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("per-tenant checkpoint: tenants.ckpt.d/%s\n", e.Name())
	}

	// Batch comparison, as in examples/streaming: the serving layer never
	// materialized the feed; the baseline gets to.
	gon, err := kcenter.Gonzalez(feed, k)
	if err != nil {
		log.Fatal(err)
	}
	realized, err := kcenter.RadiusPoints(feed, final.Centers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized serving radius %.4f vs batch GON %.4f -> %.2fx while serving live traffic\n",
		realized, gon.Radius, realized/gon.Radius)
}
