// Vehicle routing / facility placement: choose k depot locations among
// delivery addresses so the farthest address is as close as possible to its
// depot — the k-center objective the paper's introduction motivates with
// "furthest traveling time".
//
// The demo builds a synthetic metro area (dense urban core, suburban rings,
// rural sprinkle), places depots with the parallel MRG algorithm, and
// reports worst-case and per-depot travel distances.
//
//	go run ./examples/vehiclerouting
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"kcenter"
	"kcenter/internal/rng"
)

func main() {
	addresses := buildMetroArea(40000, 7)
	ds, err := kcenter.NewDataset(addresses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metro area: %d delivery addresses\n\n", ds.Len())

	for _, k := range []int{3, 6, 12} {
		res, err := kcenter.MRG(ds, k, kcenter.MRGOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k = %2d depots: worst-case travel %.2f km  (%d MapReduce rounds)\n",
			k, res.Radius, res.Rounds)

		// Per-depot load and local worst case.
		type depot struct {
			x, y  float64
			load  int
			reach float64
		}
		depots := make([]depot, k)
		for i, c := range res.Centers {
			p := ds.At(c)
			depots[i] = depot{x: p[0], y: p[1]}
		}
		for i := 0; i < ds.Len(); i++ {
			a := res.Assignment[i]
			depots[a].load++
			p := ds.At(i)
			d := math.Hypot(p[0]-depots[a].x, p[1]-depots[a].y)
			if d > depots[a].reach {
				depots[a].reach = d
			}
		}
		sort.Slice(depots, func(i, j int) bool { return depots[i].load > depots[j].load })
		for i, d := range depots {
			fmt.Printf("   depot %2d at (%6.2f, %6.2f): %6d addresses, local worst case %6.2f km\n",
				i+1, d.x, d.y, d.load, d.reach)
		}
		fmt.Println()
	}
}

// buildMetroArea synthesizes address coordinates (km): half the addresses in
// a dense core, a band in suburban clusters, and a rural remainder.
func buildMetroArea(n int, seed uint64) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, 0, n)
	// Urban core around (50, 50).
	for i := 0; i < n/2; i++ {
		out = append(out, []float64{50 + r.NormFloat64()*4, 50 + r.NormFloat64()*4})
	}
	// Eight suburban town centers.
	towns := make([][2]float64, 8)
	for i := range towns {
		angle := float64(i) / 8 * 2 * math.Pi
		towns[i] = [2]float64{50 + 25*math.Cos(angle), 50 + 25*math.Sin(angle)}
	}
	for i := 0; i < 2*n/5; i++ {
		tc := towns[r.Intn(len(towns))]
		out = append(out, []float64{tc[0] + r.NormFloat64()*2, tc[1] + r.NormFloat64()*2})
	}
	// Rural addresses spread over the whole 100×100 km region.
	for len(out) < n {
		out = append(out, []float64{r.Float64() * 100, r.Float64() * 100})
	}
	return out
}
