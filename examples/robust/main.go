// Robust clustering: the paper's §8.1 discussion in executable form.
// Plain k-center is hypersensitive to outliers — Gonzalez's farthest-first
// rule chases them by construction — while the (k, z)-center variant
// (Malkomes et al., cited by the paper) discards a budget of z points and
// recovers the real structure.
//
// The demo plants sensor-glitch outliers in clustered telemetry, runs both
// algorithms, and uses the quality diagnostics to show where the plain
// solution went wrong.
//
//	go run ./examples/robust
package main

import (
	"fmt"
	"log"

	"kcenter/internal/assign"
	"kcenter/internal/core"
	"kcenter/internal/dataset"
	"kcenter/internal/mapreduce"
	"kcenter/internal/outliers"
	"kcenter/internal/quality"
	"kcenter/internal/rng"
)

func main() {
	// 10,000 telemetry readings in 6 operating modes, plus 12 glitched
	// readings far outside the sensor range.
	const k, glitches = 6, 12
	l := dataset.Gau(dataset.GauConfig{N: 10000, KPrime: k, Seed: 33})
	ds := l.Points
	r := rng.New(34)
	for i := 0; i < glitches; i++ {
		ds.Append([]float64{3000 + r.Float64()*500, 3000 + r.Float64()*500})
	}
	fmt.Printf("telemetry: %d readings (%d planted glitches), %d operating modes\n\n",
		ds.N, glitches, k)

	// Plain k-center (GON).
	plain := core.Gonzalez(ds, k, core.Options{First: 0})
	ev := assign.Evaluate(ds, plain.Centers, 0)
	sum, err := quality.Summarize(ev.Dist, ev.Assignment, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain k-center (GON):\n")
	fmt.Printf("  radius %.2f   mean dist %.2f   p95 %.2f\n", sum.Radius, sum.MeanDist, sum.P95Dist)
	fmt.Printf("  cluster sizes: min %d, max %d  <- tiny clusters = centers wasted on glitches\n",
		sum.MinClusterSize, sum.MaxClusterSize)
	wasted := 0
	for _, c := range plain.Centers {
		if ds.At(c)[0] > 1000 {
			wasted++
		}
	}
	fmt.Printf("  centers sitting on glitches: %d of %d\n\n", wasted, k)

	// Robust (k, z)-center, two MapReduce rounds.
	robust, err := outliers.Distributed(ds, outliers.DistributedConfig{
		K: k, Z: glitches, Cluster: mapreduce.Config{Machines: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("robust (k, z)-center (z = %d, %d MapReduce rounds):\n", glitches, robust.Rounds)
	fmt.Printf("  radius over covered points: %.2f  (%.0fx better)\n",
		robust.Radius, sum.Radius/robust.Radius)
	fmt.Printf("  flagged outliers: %d\n", len(robust.Outliers))
	correct := 0
	for _, o := range robust.Outliers {
		if ds.At(o)[0] > 1000 {
			correct++
		}
	}
	fmt.Printf("  of which planted glitches: %d / %d\n\n", correct, glitches)

	dunn := quality.DunnIndex(ds, robust.Centers, robust.Radius)
	fmt.Printf("robust solution Dunn index (separation / diameter): %.1f (>> 1 means clean clusters)\n", dunn)
}
