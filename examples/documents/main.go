// Document clustering: group documents so the least-similar document in any
// group stays as similar as possible to its representative — the k-center
// objective in the paper's document-clustering motivation.
//
// Documents are synthesized as term-frequency vectors over a vocabulary,
// drawn from topic-specific word distributions, then L2-normalized so
// Euclidean distance is monotone in cosine dissimilarity. EIM's iterative
// sampling clusters them and we measure how well the recovered groups match
// the generating topics.
//
//	go run ./examples/documents
package main

import (
	"fmt"
	"log"
	"math"

	"kcenter"
	"kcenter/internal/rng"
)

const (
	numDocs   = 12000
	vocabSize = 64
	numTopics = 6
	docLength = 120
)

func main() {
	docs, topics := synthesizeCorpus(19)
	ds, err := kcenter.NewDataset(docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d documents, vocabulary %d terms, %d generating topics\n\n",
		ds.Len(), ds.Dim(), numTopics)

	res, err := kcenter.EIM(ds, numTopics, kcenter.EIMOptions{Seed: 23, Phi: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EIM (phi=4): covering radius %.4f in %d MapReduce rounds\n", res.Radius, res.Rounds)

	// Contingency: recovered cluster vs generating topic.
	table := make([][]int, len(res.Centers))
	for i := range table {
		table[i] = make([]int, numTopics)
	}
	for doc, cl := range res.Assignment {
		table[cl][topics[doc]]++
	}
	fmt.Println("\nrecovered-cluster x generating-topic contingency:")
	fmt.Print("          ")
	for t := 0; t < numTopics; t++ {
		fmt.Printf(" topic%d", t)
	}
	fmt.Println()
	correct := 0
	for cl, row := range table {
		fmt.Printf("cluster %2d", cl)
		best := 0
		for _, c := range row {
			if c > best {
				best = c
			}
		}
		correct += best
		for _, c := range row {
			fmt.Printf(" %6d", c)
		}
		fmt.Println()
	}
	fmt.Printf("\npurity: %.1f%% of documents land in a cluster dominated by their topic\n",
		100*float64(correct)/float64(numDocs))
}

// synthesizeCorpus builds term-frequency vectors: each topic has a Zipf-ish
// distribution over a preferred slice of the vocabulary plus background
// noise; documents sample docLength tokens from their topic's distribution.
func synthesizeCorpus(seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	// Topic term distributions.
	topicDist := make([][]float64, numTopics)
	for t := range topicDist {
		w := make([]float64, vocabSize)
		base := t * vocabSize / numTopics
		for i := 0; i < vocabSize; i++ {
			w[i] = 0.05 // background
		}
		for rank := 0; rank < vocabSize/numTopics; rank++ {
			w[(base+rank)%vocabSize] = 3.0 / float64(rank+1) // topical terms
		}
		total := 0.0
		for _, v := range w {
			total += v
		}
		for i := range w {
			w[i] /= total
		}
		topicDist[t] = w
	}

	docs := make([][]float64, numDocs)
	topics := make([]int, numDocs)
	for d := range docs {
		t := r.Intn(numTopics)
		topics[d] = t
		vec := make([]float64, vocabSize)
		for tok := 0; tok < docLength; tok++ {
			vec[sampleCategorical(r, topicDist[t])]++
		}
		// L2-normalize: Euclidean distance then tracks cosine dissimilarity.
		norm := 0.0
		for _, v := range vec {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i] /= norm
		}
		docs[d] = vec
	}
	return docs, topics
}

func sampleCategorical(r *rng.Source, dist []float64) int {
	u := r.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(dist) - 1
}
