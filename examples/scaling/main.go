// Scaling demo: reproduce the paper's headline speed claim — the parallel
// MRG is orders of magnitude faster than sequential GON under the simulated
// MapReduce cost model, while losing almost nothing in solution quality.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"kcenter"
)

func main() {
	const k = 25
	fmt.Printf("k = %d, 50 simulated machines; times: GON real wall vs MRG simulated parallel makespan\n\n", k)
	fmt.Printf("%10s %14s %14s %9s %14s %14s %9s\n",
		"n", "GON wall", "MRG makespan", "speedup", "GON radius", "MRG radius", "ratio")

	for _, n := range []int{20000, 50000, 100000, 200000, 500000} {
		ds := kcenter.Clustered(n, k, uint64(n))

		start := time.Now()
		gon, err := kcenter.Gonzalez(ds, k)
		if err != nil {
			log.Fatal(err)
		}
		gonWall := time.Since(start)

		mrg, err := kcenter.MRG(ds, k, kcenter.MRGOptions{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		mrgWall := time.Duration(mrg.SimulatedSeconds * float64(time.Second))

		speedup := float64(gonWall) / float64(mrgWall)
		fmt.Printf("%10d %14v %14v %8.1fx %14.4f %14.4f %9.3f\n",
			n, gonWall.Round(time.Microsecond), mrgWall.Round(time.Microsecond),
			speedup, gon.Radius, mrg.Radius, mrg.Radius/gon.Radius)
	}
	fmt.Println("\nThe paper reports MRG ~100x faster than GON at n = 1,000,000 (Figure 2a)")
	fmt.Println("with solution values within a few percent (Table 2).")
}
