// Quickstart: cluster a small synthetic data set with all three algorithm
// families from the paper and compare their covering radii.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kcenter"
)

func main() {
	// 20,000 points in 10 tight Gaussian clusters spread over a 100×100
	// field — the paper's GAU family.
	const k = 10
	ds := kcenter.Clustered(20000, k, 42)
	fmt.Printf("dataset: %d points, dim %d, %d inherent clusters\n\n", ds.Len(), ds.Dim(), k)

	// Sequential baseline: Gonzalez's greedy 2-approximation (GON).
	gon, err := kcenter.Gonzalez(ds, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GON  radius %.4f  (2-approximation, sequential)\n", gon.Radius)

	// MapReduce Gonzalez (MRG): two rounds on 50 simulated machines,
	// 4-approximation — the paper's headline algorithm.
	mrg, err := kcenter.MRG(ds, k, kcenter.MRGOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRG  radius %.4f  (%d MapReduce rounds, %g-approximation, simulated wall %.2gs)\n",
		mrg.Radius, mrg.Rounds, mrg.ApproxFactor, mrg.SimulatedSeconds)

	// Iterative sampling (EIM) with the original φ = 8.
	eim, err := kcenter.EIM(ds, k, kcenter.EIMOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EIM  radius %.4f  (%d MapReduce rounds, 10-approximation w.s.p.)\n\n",
		eim.Radius, eim.Rounds)

	// Cluster sizes under the MRG solution.
	sizes := make([]int, len(mrg.Centers))
	for _, a := range mrg.Assignment {
		sizes[a]++
	}
	fmt.Println("MRG cluster sizes:")
	for i, c := range mrg.Centers {
		p := ds.At(c)
		fmt.Printf("  center %2d at (%7.2f, %7.2f): %5d points\n", i, p[0], p[1], sizes[i])
	}
}
