// Streaming: cluster a live insertion-only feed without ever materializing
// it. Four producer goroutines push points concurrently into a sharded
// doubling-algorithm summarizer; memory stays O(shards·k) no matter how long
// the feed runs. At the end the shard summaries are merged with a Gonzalez
// pass — the paper's MRG composition transplanted to streams — and the
// result is compared against the batch baseline that gets to see all points
// at once.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"kcenter"
)

func main() {
	const (
		k         = 10
		producers = 4
		perProd   = 50000
	)

	// The "live feed": each producer draws from one region of the paper's
	// GAU family, simulating e.g. per-datacenter event streams.
	st, err := kcenter.NewStream(k, kcenter.StreamOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	feeds := make([]*kcenter.Dataset, producers)
	for p := range feeds {
		feeds[p] = kcenter.Clustered(perProd, k, uint64(p)+1)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ds := feeds[p]
			for i := 0; i < ds.Len(); i++ {
				if err := st.Push(ds.At(i)); err != nil {
					log.Fatal(err)
				}
			}
		}(p)
	}

	// Live query while producers are still pushing: Centers() snapshots the
	// current clustering under per-shard read locks, so a serving path can
	// answer "where are the clusters right now?" without stopping ingestion.
	// Each snapshot locks every shard briefly — poll gently, don't spin.
	for {
		mid, err := st.Centers()
		if err != nil {
			time.Sleep(time.Millisecond) // nothing drained yet
			continue
		}
		fmt.Printf("mid-stream snapshot: %d centers while ingestion runs\n", len(mid))
		break
	}

	wg.Wait() // all producers done; only now may Finish run

	res, err := st.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d points through 4 shards into %d centers\n", res.Ingested, len(res.Centers))
	fmt.Printf("certified:  %.4f <= OPT <= radius <= %.4f  (%g-approximation)\n",
		res.LowerBound, res.Radius, res.ApproxFactor)

	// Batch comparison: materialize the union (which a real stream consumer
	// could not) and measure the realized radius of the streaming centers
	// next to the 2-approximate batch baseline.
	var all [][]float64
	for _, ds := range feeds {
		for i := 0; i < ds.Len(); i++ {
			all = append(all, ds.At(i))
		}
	}
	full, err := kcenter.NewDataset(all)
	if err != nil {
		log.Fatal(err)
	}
	realized, err := kcenter.RadiusPoints(full, res.Centers)
	if err != nil {
		log.Fatal(err)
	}
	gon, err := kcenter.Gonzalez(full, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized streaming radius: %.4f  (bound was %.4f)\n", realized, res.Radius)
	fmt.Printf("batch GON radius:          %.4f  -> streaming/batch = %.2fx in O(s·k) memory\n",
		gon.Radius, realized/gon.Radius)
}
