// Command experiments regenerates the paper's tables and figures.
//
// Every table and figure in the evaluation section of McClintock & Wirth
// (ICPP 2016) has an experiment id; -list shows them all. The paper's full
// problem sizes (n up to 1,000,000) run with -scale 1; larger -scale divides
// every n for fast verification at the same shape.
//
//	experiments -list
//	experiments -exp table2 -scale 10
//	experiments -exp all -scale 50 -repeats 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kcenter/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		scale    = fs.Int("scale", 10, "divide the paper's n by this factor (1 = full size)")
		repeats  = fs.Int("repeats", 3, "repetitions averaged per cell")
		seed     = fs.Uint64("seed", 1, "base random seed")
		machines = fs.Int("m", 50, "simulated MapReduce machines")
		doPlot   = fs.Bool("plot", false, "render figure experiments as ASCII charts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(out, "%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	cfg := harness.RunConfig{Scale: *scale, Repeats: *repeats, Seed: *seed, Machines: *machines, Plot: *doPlot}
	var toRun []harness.Experiment
	if *exp == "all" {
		toRun = harness.All()
	} else {
		e, ok := harness.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list", *exp)
		}
		toRun = []harness.Experiment{e}
	}

	for _, e := range toRun {
		fmt.Fprintf(out, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(out, "paper reports: %s\n", e.Paper)
		start := time.Now()
		if err := e.Run(cfg, out); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
