package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "table2", "table7", "fig1", "fig4b"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== table1") || !strings.Contains(out, "regenerated in") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunValueExperimentAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table3", "-scale", "100", "-repeats", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MRG") || !strings.Contains(out, "GON") {
		t.Fatalf("table header missing:\n%s", out)
	}
	// Six k rows expected.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 4 && (f[0] == "2" || f[0] == "5" || f[0] == "10" || f[0] == "25" || f[0] == "50" || f[0] == "100") {
			rows++
		}
	}
	if rows != 6 {
		t.Fatalf("expected 6 k-rows, found %d:\n%s", rows, out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
