// Command kcenter runs one k-center algorithm on a data set and reports the
// solution value, the simulated parallel runtime and round structure.
//
// Data can come from a CSV file (-csv, UCI-style numeric text) or from one
// of the built-in generators matching the paper's §7.3 families:
//
//	kcenter -algo mrg -dataset gau -n 100000 -kprime 25 -k 25
//	kcenter -algo eim -dataset unif -n 50000 -k 10 -phi 4
//	kcenter -algo gon -csv pokerhand.data -k 25
//
// The stream subcommand instead ingests rows incrementally — CSV rows are
// pushed into the sharded streaming summarizer as they are read, never
// materializing the dataset, so arbitrarily large (or live) feeds fit in
// O(shards·k) memory:
//
//	kcenter stream -csv pokerhand.data -k 25 -shards 8
//	kcenter stream -dataset gau -n 1000000 -k 25
//
// The serve subcommand runs the HTTP/JSON clustering service: live batched
// ingestion (POST /v1/ingest, shedding with 429 + Retry-After when the
// bounded queue stays full past -shed-after), batch nearest-center
// assignment against consistent snapshots (POST /v1/assign), and
// introspection (GET /v1/centers, GET /v1/stats, GET /v1/tenants,
// GET /v1/healthz for liveness/readiness probes). With
// -tenants N one server multiplexes up to N independent clusterings,
// routed by the X-Kcenter-Tenant header and created lazily on first
// ingest (k from X-Kcenter-K or -default-k); requests without a tenant
// header keep the single-tenant wire format exactly. With -checkpoint the
// server persists every tenant's clustering state (the default tenant in
// the named file, others under <file>.d/) and resumes them warm on the
// next boot, logging resume summaries; -checkpoint-keep N retains the
// last N checkpoints per tenant for operator rollback. With -node-id and
// -replicate-peers the server gossips every tenant's exported clustering
// state to its peers once per -replicate-interval (POST /v1/replicate,
// checksummed checkpoint frames); peers fold the states into their merged
// views and serve assign/centers against the union summary, so a follower
// serves reads with no local ingest and promotes on primary failure by
// simply continuing to serve. SIGINT/SIGTERM
// shut it down gracefully, draining queued batches, writing the final
// checkpoints and printing the final certified clustering. For resilience
// testing, -faults arms the deterministic fault-injection framework (e.g.
// -faults 'checkpoint.fsync=error;stream.shard=panic-after-100'); a tenant
// hit by an injected worker or shard panic degrades — serving its last good
// snapshot read-only — instead of taking the process down. Telemetry is on
// by default (-telemetry=false disarms it to one atomic load per probe):
// GET /metrics serves Prometheus text exposition with per-tenant and
// aggregate latency histograms, -pprof mounts net/http/pprof under
// /debug/pprof/, -slow-request 250ms logs a per-stage breakdown of any
// slower request, and -log-format json|text picks the structured log
// encoding. On startup the effective config is logged once as a
// self-describing "serve config" line:
//
//	kcenter serve -addr :8080 -k 25 -shards 8
//	kcenter serve -addr :8080 -k 25 -checkpoint /var/lib/kcenter/serve.ckpt
//	kcenter serve -addr :8080 -k 25 -tenants 64 -default-k 10 -checkpoint-keep 3
//	kcenter serve -addr 127.0.0.1:0 -k 10 -max-batch 1024 -read-timeout 5s
//	kcenter serve -addr :8080 -k 25 -node-id a -replicate-peers http://10.0.0.2:8080
//	kcenter serve -addr :8080 -k 25 -pprof -slow-request 250ms -log-format json
//
// Exit status is non-zero on any configuration or runtime error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kcenter"
	"kcenter/internal/core"
	"kcenter/internal/dataset"
	"kcenter/internal/eim"
	"kcenter/internal/fault"
	"kcenter/internal/mapreduce"
	"kcenter/internal/metric"
	"kcenter/internal/mrg"
	"kcenter/internal/obs"
	"kcenter/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kcenter:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer, stop <-chan os.Signal) error {
	if len(args) > 0 && args[0] == "stream" {
		return runStream(args[1:], out)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], out, stop)
	}
	fs := flag.NewFlagSet("kcenter", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "mrg", "algorithm: gon | mrg | eim")
		k        = fs.Int("k", 10, "number of centers")
		n        = fs.Int("n", 100000, "points for generated data sets")
		dsName   = fs.String("dataset", "unif", "generator: unif | gau | unb | poker | kdd")
		kPrime   = fs.Int("kprime", 25, "inherent clusters for gau/unb")
		csvPath  = fs.String("csv", "", "load points from a CSV file instead of generating")
		machines = fs.Int("m", 50, "simulated MapReduce machines")
		phi      = fs.Float64("phi", 8, "EIM pivot parameter φ")
		eps      = fs.Float64("eps", 0.1, "EIM sampling exponent ε")
		seed     = fs.Uint64("seed", 1, "random seed")
		verbose  = fs.Bool("v", false, "print per-round statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, name, err := loadData(*csvPath, *dsName, *n, *kPrime, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "data: %s (n=%d, dim=%d)   k=%d   m=%d\n", name, ds.N, ds.Dim, *k, *machines)

	switch *algo {
	case "gon":
		start := time.Now()
		res := core.Gonzalez(ds, *k, core.Options{First: 0})
		elapsed := time.Since(start)
		fmt.Fprintf(out, "GON   value=%.6g   wall=%v   distance-evals=%d\n",
			res.Radius, elapsed, res.DistEvals)
	case "mrg":
		res, err := mrg.Run(ds, mrg.Config{
			K:       *k,
			Cluster: mapreduce.Config{Machines: *machines},
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "MRG   value=%.6g   simulated-wall=%v   rounds=%d   approx=%g\n",
			res.Radius, res.Stats.SimulatedWall(), res.MapReduceRounds, res.ApproxFactor)
		if *verbose {
			printRounds(out, res.Stats)
		}
	case "eim":
		res, err := eim.Run(ds, eim.Config{
			K:       *k,
			Phi:     *phi,
			Epsilon: *eps,
			Cluster: mapreduce.Config{Machines: *machines},
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		mode := "sampling"
		if res.FellBack {
			mode = "fallback-to-GON"
		}
		fmt.Fprintf(out, "EIM   value=%.6g   simulated-wall=%v   rounds=%d   iterations=%d   sample=%d   mode=%s\n",
			res.Radius, res.Stats.SimulatedWall(), res.MapReduceRounds, res.Iterations,
			res.SampleSize, mode)
		if *verbose {
			printRounds(out, res.Stats)
			for i, it := range res.PerIteration {
				fmt.Fprintf(out, "  iter %d: |R| %d -> %d, sampled %d, |H| %d, pivot-dist %.6g\n",
					i+1, it.RBefore, it.RAfter, it.Sampled, it.HSize, it.PivotDist)
			}
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want gon, mrg or eim)", *algo)
	}
	return nil
}

// runServe implements the serve subcommand: the HTTP clustering service
// with graceful signal-driven shutdown. It blocks until a signal arrives on
// stop (or the listener fails), then drains in-flight batches and prints
// the final certified clustering. A nil stop subscribes to SIGINT/SIGTERM
// here — only the serve subcommand takes over signal handling; batch and
// stream runs keep the default terminate-on-Ctrl-C behavior.
func runServe(args []string, out io.Writer, stop <-chan os.Signal) error {
	if stop == nil {
		c := make(chan os.Signal, 1)
		signal.Notify(c, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(c)
		stop = c
	}
	fs := flag.NewFlagSet("kcenter serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		k            = fs.Int("k", 10, "number of centers")
		shards       = fs.Int("shards", 1, "concurrent ingestion shards")
		buffer       = fs.Int("buffer", 0, "per-shard channel depth (0 = default)")
		maxBatch     = fs.Int("max-batch", 0, "max points per request (0 = 4096)")
		queueDepth   = fs.Int("queue", 0, "ingest queue depth in batches (0 = 64)")
		shedAfter    = fs.Duration("shed-after", 0, "patience at a full ingest queue before shedding with 429 (0 = 1s, negative = block)")
		ckptPath     = fs.String("checkpoint", "", "checkpoint file: restore on boot, persist periodically and on shutdown")
		ckptInterval = fs.Duration("checkpoint-interval", 0, "background checkpoint period (0 = 15s; writes only on center changes)")
		ckptKeep     = fs.Int("checkpoint-keep", 0, "keep the last N checkpoints per tenant as <path>.1..N for rollback (0 = none)")
		tenants      = fs.Int("tenants", 0, "max tenants for multi-tenant serving; 0 = single-tenant mode")
		defaultK     = fs.Int("default-k", 0, "centers for lazily created tenants without an X-Kcenter-K header (0 = -k)")
		nodeID       = fs.String("node-id", "", "this node's origin label in replication gossip (required with -replicate-peers)")
		replPeers    = fs.String("replicate-peers", "", "comma-separated peer base URLs to push clustering state to, e.g. http://10.0.0.2:8080,http://10.0.0.3:8080")
		replInterval = fs.Duration("replicate-interval", 0, "replication push period (0 = 2s); bounds follower staleness on a healthy link")
		telemetry    = fs.Bool("telemetry", true, "arm latency telemetry: /metrics exposition and /v1/stats latency fields")
		pprofFlag    = fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
		slowReq      = fs.Duration("slow-request", 0, "log requests at or above this latency with a per-stage breakdown (0 = off; needs -telemetry)")
		coalWindow   = fs.Duration("coalesce-window", 0, "assign coalescer gather window: concurrent /v1/assign requests on one snapshot fuse into one kernel pass (0 = 200µs, negative = off)")
		coalMax      = fs.Int("coalesce-max", 0, "max assign requests fused per coalesced pass (0 = 16)")
		logFormat    = fs.String("log-format", "text", "structured log encoding: text | json")
		faults       = fs.String("faults", "", "arm deterministic fault injection, e.g. 'checkpoint.fsync=error;stream.shard=panic-after-100' (testing only)")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "HTTP write timeout (bounds ingest queue waits)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "shutdown budget for draining queued batches")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	// The serve process's structured logs (degrade, checkpoint transitions,
	// contained panics, slow requests) go where the operator output goes.
	obs.SetDefault(obs.NewLogger(out, format, obs.LevelInfo))
	if *faults != "" {
		rules, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		if err := fault.Enable(rules); err != nil {
			return err
		}
		defer fault.Disable()
		fmt.Fprintf(out, "FAULT INJECTION ARMED: %s (testing only — failures below are deliberate)\n", *faults)
	}
	srv, err := kcenter.NewServer(*k, kcenter.ServerOptions{
		Shards:             *shards,
		Buffer:             *buffer,
		MaxBatch:           *maxBatch,
		QueueDepth:         *queueDepth,
		ShedAfter:          *shedAfter,
		CheckpointPath:     *ckptPath,
		CheckpointInterval: *ckptInterval,
		CheckpointKeep:     *ckptKeep,
		MaxTenants:         *tenants,
		DefaultK:           *defaultK,
		NodeID:             *nodeID,
		ReplicatePeers:     splitPeers(*replPeers),
		ReplicateInterval:  *replInterval,
		Telemetry:          *telemetry,
		Pprof:              *pprofFlag,
		SlowRequest:        *slowReq,
		CoalesceWindow:     *coalWindow,
		CoalesceMax:        *coalMax,
	})
	if err != nil {
		return err
	}
	for _, rs := range srv.TenantRestores() {
		tenant := ""
		if rs.Tenant != "default" {
			tenant = "tenant " + rs.Tenant + " "
		}
		fmt.Fprintf(out, "%sresumed from checkpoint %s: centers=%d ingested=%d dim=%d version=%d age=%v\n",
			tenant, rs.Path, rs.Centers, rs.Ingested, rs.Dim, rs.CentersVersion,
			time.Since(rs.Created).Round(time.Second))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	fmt.Fprintf(out, "serving on http://%s   k=%d   shards=%d\n", ln.Addr(), *k, *shards)
	// One self-describing banner with the full effective config (defaults
	// resolved), so an operator report or log capture names every knob the
	// process actually runs with.
	effMaxBatch := *maxBatch
	if effMaxBatch <= 0 {
		effMaxBatch = 4096
	}
	effQueue := *queueDepth
	if effQueue <= 0 {
		effQueue = 64
	}
	effShed := *shedAfter
	if effShed == 0 {
		effShed = time.Second
	}
	effCkptInterval := *ckptInterval
	if effCkptInterval <= 0 {
		effCkptInterval = 15 * time.Second
	}
	effDefaultK := *defaultK
	if effDefaultK <= 0 {
		effDefaultK = *k
	}
	effCoalWindow := *coalWindow
	if effCoalWindow == 0 {
		effCoalWindow = 200 * time.Microsecond
	}
	effCoalMax := *coalMax
	if effCoalMax <= 0 {
		effCoalMax = 16
	}
	effReplInterval := *replInterval
	if effReplInterval <= 0 {
		effReplInterval = 2 * time.Second
	}
	obs.Default().Info("serve config",
		"addr", ln.Addr().String(),
		"k", *k,
		"shards", *shards,
		"buffer", *buffer,
		"max_batch", effMaxBatch,
		"queue", effQueue,
		"shed_after", effShed,
		"checkpoint", *ckptPath,
		"checkpoint_interval", effCkptInterval,
		"checkpoint_keep", *ckptKeep,
		"tenants", *tenants,
		"default_k", effDefaultK,
		"node_id", *nodeID,
		"replicate_peers", *replPeers,
		"replicate_interval", effReplInterval,
		"telemetry", *telemetry,
		"pprof", *pprofFlag,
		"slow_request", *slowReq,
		"coalesce_window", effCoalWindow,
		"coalesce_max", effCoalMax,
		"log_format", *logFormat,
		"faults_armed", *faults != "",
	)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-stop:
	}
	fmt.Fprintln(out, "shutting down: draining in-flight batches")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	res, err := srv.Shutdown(ctx)
	if errors.Is(err, kcenter.ErrNothingIngested) {
		fmt.Fprintln(out, "final clustering: none (nothing ingested)")
		return nil
	}
	if err != nil && res == nil {
		// A real drain failure (e.g. the timeout expired with batches still
		// queued) must not masquerade as an empty server: queued data was
		// lost, so report it and exit non-zero.
		return err
	}
	fmt.Fprintf(out, "FINAL   bound=%.6g   lower-bound=%.6g   centers=%d   ingested=%d   (%g-approximation)\n",
		res.Radius, res.LowerBound, len(res.Centers), res.Ingested, res.ApproxFactor)
	// A non-nil res with a non-nil error means the clustering drained fine
	// but the final checkpoint write failed: report it and exit non-zero so
	// operators notice the stale checkpoint.
	return err
}

// splitPeers parses the comma-separated -replicate-peers value, dropping
// empty entries so a trailing comma is harmless.
func splitPeers(spec string) []string {
	var peers []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// runStream implements the stream subcommand: incremental ingestion into a
// sharded streaming summarizer.
func runStream(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenter stream", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 10, "number of centers")
		shards  = fs.Int("shards", 1, "concurrent shard goroutines")
		buffer  = fs.Int("buffer", 0, "per-shard channel depth (0 = default)")
		csvPath = fs.String("csv", "", "read CSV rows incrementally from a file ('-' for stdin)")
		dsName  = fs.String("dataset", "unif", "generator when no -csv: unif | gau | unb | poker | kdd")
		n       = fs.Int("n", 100000, "points for generated data sets")
		kPrime  = fs.Int("kprime", 25, "inherent clusters for gau/unb")
		seed    = fs.Uint64("seed", 1, "random seed for generated data sets")
		verbose = fs.Bool("v", false, "print per-shard statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards <= 0 {
		*shards = 1
	}
	sh, err := stream.NewSharded(stream.ShardedConfig{K: *k, Shards: *shards, Buffer: *buffer})
	if err != nil {
		return err
	}
	start := time.Now()
	var pushed int64
	if *csvPath != "" {
		r := io.Reader(os.Stdin)
		name := "stdin"
		if *csvPath != "-" {
			f, err := os.Open(*csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
			name = *csvPath
		}
		fmt.Fprintf(out, "streaming %s   k=%d   shards=%d\n", name, *k, *shards)
		pushed, err = pushCSV(r, sh)
		if err != nil {
			return err
		}
	} else {
		// Generated feeds are materialized by the generator but pushed row
		// by row, exercising the same ingestion path as a live source.
		ds, name, err := loadData("", *dsName, *n, *kPrime, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "streaming %s (n=%d, dim=%d)   k=%d   shards=%d\n", name, ds.N, ds.Dim, *k, *shards)
		for i := 0; i < ds.N; i++ {
			if err := sh.Push(ds.At(i)); err != nil {
				return err
			}
			pushed++
		}
	}
	res, err := sh.Finish()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "STREAM   bound=%.6g   lower-bound=%.6g   centers=%d   union=%d   ingested=%d   wall=%v   (%.3g pts/s)\n",
		res.Bound, res.LowerBound, res.Centers.N, res.UnionSize, res.Ingested,
		elapsed.Round(time.Millisecond), float64(pushed)/elapsed.Seconds())
	if *verbose {
		for i, st := range res.PerShard {
			fmt.Fprintf(out, "  shard %-3d ingested=%-9d centers=%-4d r=%-12.6g doublings=%d\n",
				i, st.Ingested, st.Centers, st.R, st.Merges)
		}
	}
	return nil
}

// pushCSV reads UCI-style comma-separated text row by row and pushes each
// row into sh without materializing the matrix. Column handling (numeric
// autodetection from the first data row) is shared with dataset.LoadCSV via
// ForEachCSVRow; Push copies each row, satisfying the iterator's reuse
// contract.
func pushCSV(r io.Reader, sh *stream.Sharded) (int64, error) {
	return dataset.ForEachCSVRow(r, dataset.LoadCSVOptions{}, sh.Push)
}

func loadData(csvPath, dsName string, n, kPrime int, seed uint64) (*metric.Dataset, string, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := dataset.LoadCSV(f, dataset.LoadCSVOptions{})
		if err != nil {
			return nil, "", err
		}
		return ds, csvPath, nil
	}
	switch dsName {
	case "unif":
		l := dataset.Unif(dataset.UnifConfig{N: n, Seed: seed})
		return l.Points, l.Name, nil
	case "gau":
		l := dataset.Gau(dataset.GauConfig{N: n, KPrime: kPrime, Seed: seed})
		return l.Points, l.Name, nil
	case "unb":
		l := dataset.Unb(dataset.GauConfig{N: n, KPrime: kPrime, Seed: seed})
		return l.Points, l.Name, nil
	case "poker":
		l := dataset.PokerLike(seed)
		return l.Points, l.Name, nil
	case "kdd":
		l := dataset.KDDLike(dataset.KDDLikeConfig{N: n, Seed: seed})
		return l.Points, l.Name, nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (want unif, gau, unb, poker or kdd)", dsName)
	}
}

func printRounds(out io.Writer, stats *mapreduce.JobStats) {
	for _, r := range stats.Rounds {
		fmt.Fprintf(out, "  round %-16s machines=%-4d max-wall=%-14v max-ops=%d\n",
			r.Name, r.Tasks, r.MaxWall, r.MaxOps)
	}
}
