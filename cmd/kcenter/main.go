// Command kcenter runs one k-center algorithm on a data set and reports the
// solution value, the simulated parallel runtime and round structure.
//
// Data can come from a CSV file (-csv, UCI-style numeric text) or from one
// of the built-in generators matching the paper's §7.3 families:
//
//	kcenter -algo mrg -dataset gau -n 100000 -kprime 25 -k 25
//	kcenter -algo eim -dataset unif -n 50000 -k 10 -phi 4
//	kcenter -algo gon -csv pokerhand.data -k 25
//
// Exit status is non-zero on any configuration or runtime error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kcenter/internal/core"
	"kcenter/internal/dataset"
	"kcenter/internal/eim"
	"kcenter/internal/mapreduce"
	"kcenter/internal/metric"
	"kcenter/internal/mrg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kcenter:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenter", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "mrg", "algorithm: gon | mrg | eim")
		k        = fs.Int("k", 10, "number of centers")
		n        = fs.Int("n", 100000, "points for generated data sets")
		dsName   = fs.String("dataset", "unif", "generator: unif | gau | unb | poker | kdd")
		kPrime   = fs.Int("kprime", 25, "inherent clusters for gau/unb")
		csvPath  = fs.String("csv", "", "load points from a CSV file instead of generating")
		machines = fs.Int("m", 50, "simulated MapReduce machines")
		phi      = fs.Float64("phi", 8, "EIM pivot parameter φ")
		eps      = fs.Float64("eps", 0.1, "EIM sampling exponent ε")
		seed     = fs.Uint64("seed", 1, "random seed")
		verbose  = fs.Bool("v", false, "print per-round statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, name, err := loadData(*csvPath, *dsName, *n, *kPrime, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "data: %s (n=%d, dim=%d)   k=%d   m=%d\n", name, ds.N, ds.Dim, *k, *machines)

	switch *algo {
	case "gon":
		start := time.Now()
		res := core.Gonzalez(ds, *k, core.Options{First: 0})
		elapsed := time.Since(start)
		fmt.Fprintf(out, "GON   value=%.6g   wall=%v   distance-evals=%d\n",
			res.Radius, elapsed, res.DistEvals)
	case "mrg":
		res, err := mrg.Run(ds, mrg.Config{
			K:       *k,
			Cluster: mapreduce.Config{Machines: *machines},
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "MRG   value=%.6g   simulated-wall=%v   rounds=%d   approx=%g\n",
			res.Radius, res.Stats.SimulatedWall(), res.MapReduceRounds, res.ApproxFactor)
		if *verbose {
			printRounds(out, res.Stats)
		}
	case "eim":
		res, err := eim.Run(ds, eim.Config{
			K:       *k,
			Phi:     *phi,
			Epsilon: *eps,
			Cluster: mapreduce.Config{Machines: *machines},
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		mode := "sampling"
		if res.FellBack {
			mode = "fallback-to-GON"
		}
		fmt.Fprintf(out, "EIM   value=%.6g   simulated-wall=%v   rounds=%d   iterations=%d   sample=%d   mode=%s\n",
			res.Radius, res.Stats.SimulatedWall(), res.MapReduceRounds, res.Iterations,
			res.SampleSize, mode)
		if *verbose {
			printRounds(out, res.Stats)
			for i, it := range res.PerIteration {
				fmt.Fprintf(out, "  iter %d: |R| %d -> %d, sampled %d, |H| %d, pivot-dist %.6g\n",
					i+1, it.RBefore, it.RAfter, it.Sampled, it.HSize, it.PivotDist)
			}
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want gon, mrg or eim)", *algo)
	}
	return nil
}

func loadData(csvPath, dsName string, n, kPrime int, seed uint64) (*metric.Dataset, string, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := dataset.LoadCSV(f, dataset.LoadCSVOptions{})
		if err != nil {
			return nil, "", err
		}
		return ds, csvPath, nil
	}
	switch dsName {
	case "unif":
		l := dataset.Unif(dataset.UnifConfig{N: n, Seed: seed})
		return l.Points, l.Name, nil
	case "gau":
		l := dataset.Gau(dataset.GauConfig{N: n, KPrime: kPrime, Seed: seed})
		return l.Points, l.Name, nil
	case "unb":
		l := dataset.Unb(dataset.GauConfig{N: n, KPrime: kPrime, Seed: seed})
		return l.Points, l.Name, nil
	case "poker":
		l := dataset.PokerLike(seed)
		return l.Points, l.Name, nil
	case "kdd":
		l := dataset.KDDLike(dataset.KDDLikeConfig{N: n, Seed: seed})
		return l.Points, l.Name, nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (want unif, gau, unb, poker or kdd)", dsName)
	}
}

func printRounds(out io.Writer, stats *mapreduce.JobStats) {
	for _, r := range stats.Rounds {
		fmt.Fprintf(out, "  round %-16s machines=%-4d max-wall=%-14v max-ops=%d\n",
			r.Name, r.Tasks, r.MaxWall, r.MaxOps)
	}
}
