package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runT runs the CLI without a signal channel; only the serve subcommand
// consumes one, and its tests construct their own.
func runT(args []string, out io.Writer) error {
	return run(args, out, nil)
}

func TestRunGON(t *testing.T) {
	var buf bytes.Buffer
	err := runT([]string{"-algo", "gon", "-dataset", "unif", "-n", "2000", "-k", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "GON") || !strings.Contains(out, "value=") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunMRGVerbose(t *testing.T) {
	var buf bytes.Buffer
	err := runT([]string{"-algo", "mrg", "-dataset", "gau", "-n", "5000", "-kprime", "5", "-k", "5", "-v"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rounds=2") {
		t.Fatalf("expected 2-round MRG, got:\n%s", out)
	}
	if !strings.Contains(out, "mrg-parallel-1") || !strings.Contains(out, "mrg-final") {
		t.Fatalf("verbose round listing missing:\n%s", out)
	}
}

func TestRunEIMVerbose(t *testing.T) {
	var buf bytes.Buffer
	err := runT([]string{"-algo", "eim", "-dataset", "unif", "-n", "30000", "-k", "5", "-v"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mode=sampling") {
		t.Fatalf("expected sampling mode:\n%s", out)
	}
	if !strings.Contains(out, "iter 1:") {
		t.Fatalf("verbose iteration stats missing:\n%s", out)
	}
}

func TestRunEIMFallbackMode(t *testing.T) {
	var buf bytes.Buffer
	err := runT([]string{"-algo", "eim", "-dataset", "unif", "-n", "2000", "-k", "100"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mode=fallback-to-GON") {
		t.Fatalf("expected fallback mode:\n%s", buf.String())
	}
}

func TestRunAllGenerators(t *testing.T) {
	for _, ds := range []string{"unif", "gau", "unb", "kdd"} {
		var buf bytes.Buffer
		if err := runT([]string{"-algo", "gon", "-dataset", ds, "-n", "2000", "-k", "3"}, &buf); err != nil {
			t.Fatalf("dataset %s: %v", ds, err)
		}
	}
	// poker has a fixed size and is slower; run with small k once.
	var buf bytes.Buffer
	if err := runT([]string{"-algo", "gon", "-dataset", "poker", "-k", "2"}, &buf); err != nil {
		t.Fatalf("poker: %v", err)
	}
}

func TestRunCSVInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.csv")
	if err := os.WriteFile(path, []byte("0,0\n1,0\n0,1\n10,10\n11,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runT([]string{"-algo", "gon", "-csv", path, "-k", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=5") {
		t.Fatalf("CSV not loaded:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runT([]string{"-algo", "nope"}, &buf); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if err := runT([]string{"-dataset", "nope"}, &buf); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if err := runT([]string{"-csv", "/does/not/exist.csv"}, &buf); err == nil {
		t.Fatal("missing CSV should fail")
	}
	if err := runT([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunStreamGenerated(t *testing.T) {
	var buf bytes.Buffer
	err := runT([]string{"stream", "-dataset", "gau", "-n", "5000", "-kprime", "5", "-k", "5", "-shards", "4", "-v"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "STREAM") || !strings.Contains(out, "ingested=5000") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "shard 0") || !strings.Contains(out, "shard 3") {
		t.Fatalf("verbose per-shard stats missing:\n%s", out)
	}
}

func TestRunStreamCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.csv")
	// A mixed-type row mirrors UCI files: the symbolic column is skipped by
	// the same autodetection LoadCSV uses.
	if err := os.WriteFile(path, []byte("0,a,0\n1,b,0\n0,c,1\n10,d,10\n11,e,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runT([]string{"stream", "-csv", path, "-k", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ingested=5") {
		t.Fatalf("CSV rows not streamed:\n%s", out)
	}
	if !strings.Contains(out, "centers=2") {
		t.Fatalf("expected 2 centers:\n%s", out)
	}
}

func TestRunStreamErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runT([]string{"stream", "-k", "0"}, &buf); err == nil {
		t.Fatal("k=0 should fail")
	}
	if err := runT([]string{"stream", "-csv", "/does/not/exist.csv"}, &buf); err == nil {
		t.Fatal("missing CSV should fail")
	}
	if err := runT([]string{"stream", "-dataset", "nope"}, &buf); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runT([]string{"stream", "-csv", path, "-k", "2"}, &buf); err == nil {
		t.Fatal("empty CSV should fail")
	}
	path2 := filepath.Join(dir, "symbolic.csv")
	if err := os.WriteFile(path2, []byte("a,b\nc,d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runT([]string{"stream", "-csv", path2, "-k", "2"}, &buf); err == nil {
		t.Fatal("all-symbolic CSV should fail")
	}
}
