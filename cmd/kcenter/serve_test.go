package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes bytes.Buffer safe to read from the test while the serve
// goroutine writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var serveURLRe = regexp.MustCompile(`serving on (http://[^\s]+)`)

// TestRunServeEndToEnd drives the serve subcommand like an operator would:
// start it on a free port, ingest and assign over real HTTP, send the stop
// signal and check the graceful drain prints the final clustering.
func TestRunServeEndToEnd(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"serve", "-addr", "127.0.0.1:0", "-k", "4", "-shards", "2"}, out, stop)
	}()

	// Wait for the listener line to learn the port.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := serveURLRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line before timeout; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, b.String()
	}

	if resp, body := post("/v1/ingest", `{"points": [[0,0],[1,0],[10,10],[11,10],[0,1],[10,11]]}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d body %s", resp.StatusCode, body)
	}
	// Ingestion is asynchronous; poll until assignment sees centers.
	var assignBody string
	for {
		resp, body := post("/v1/assign", `{"points": [[0.5,0.5],[10.5,10.5]]}`)
		if resp.StatusCode == http.StatusOK {
			assignBody = body
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("assign: status %d body %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("assign never succeeded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var ar struct {
		Assignments []struct {
			Center   int     `json:"center"`
			Distance float64 `json:"distance"`
		} `json:"assignments"`
	}
	if err := json.Unmarshal([]byte(assignBody), &ar); err != nil {
		t.Fatalf("assign body %q: %v", assignBody, err)
	}
	if len(ar.Assignments) != 2 {
		t.Fatalf("assignments: %s", assignBody)
	}
	if ar.Assignments[0].Center == ar.Assignments[1].Center {
		t.Fatalf("far-apart queries assigned to one center: %s", assignBody)
	}

	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}

	stop <- os.Interrupt
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not shut down; output:\n%s", out.String())
	}
	final := out.String()
	if !strings.Contains(final, "FINAL") || !strings.Contains(final, "ingested=6") {
		t.Fatalf("graceful shutdown summary missing:\n%s", final)
	}
}

func TestRunServeErrors(t *testing.T) {
	out := &syncBuffer{}
	if err := run([]string{"serve", "-k", "0"}, out, nil); err == nil {
		t.Fatal("k=0 should fail")
	}
	if err := run([]string{"serve", "-badflag"}, out, nil); err == nil {
		t.Fatal("bad flag should fail")
	}
	if err := run([]string{"serve", "-addr", "256.256.256.256:1"}, out, nil); err == nil {
		t.Fatal("unlistenable address should fail")
	}
}

// TestRunServeCheckpointResume: a serve process with -checkpoint is stopped
// and restarted; the second process must announce the resume and serve the
// identical center set at the identical snapshot version before any new
// ingest.
func TestRunServeCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	serveArgs := []string{"serve", "-addr", "127.0.0.1:0", "-k", "4", "-shards", "2",
		"-checkpoint", ckpt, "-checkpoint-interval", "10ms"}

	startServe := func() (*syncBuffer, chan os.Signal, chan error, string) {
		t.Helper()
		out := &syncBuffer{}
		stop := make(chan os.Signal, 1)
		errc := make(chan error, 1)
		go func() { errc <- run(serveArgs, out, stop) }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if m := serveURLRe.FindStringSubmatch(out.String()); m != nil {
				return out, stop, errc, m[1]
			}
			select {
			case err := <-errc:
				t.Fatalf("serve exited early: %v\noutput:\n%s", err, out.String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("no listen line before timeout; output:\n%s", out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	getBody := func(url, path string) string {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d body %s", path, resp.StatusCode, b.String())
		}
		return b.String()
	}
	stopServe := func(stop chan os.Signal, errc chan error, out *syncBuffer) {
		t.Helper()
		stop <- os.Interrupt
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("serve returned %v\noutput:\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("serve did not shut down; output:\n%s", out.String())
		}
	}

	out1, stop1, errc1, url1 := startServe()
	body := `{"points": [[0,0],[1,0],[10,10],[11,10],[0,1],[10,11],[50,50],[51,50]]}`
	resp, err := http.Post(url1+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	// Wait until every point has been consumed by a shard (not merely
	// queued), so the served centers and the shutdown checkpoint are built
	// from the identical state.
	deadline := time.Now().Add(10 * time.Second)
	var centers1 string
	for {
		s := getBody(url1, "/v1/stats")
		var st struct {
			PerShard []struct {
				Ingested int64 `json:"ingested"`
			} `json:"per_shard"`
		}
		if err := json.Unmarshal([]byte(s), &st); err != nil {
			t.Fatalf("stats %q: %v", s, err)
		}
		var consumed int64
		for _, sh := range st.PerShard {
			consumed += sh.Ingested
		}
		if consumed == 8 {
			centers1 = getBody(url1, "/v1/centers")
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("points never ingested; stats: %s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopServe(stop1, errc1, out1)
	if !strings.Contains(out1.String(), "FINAL") {
		t.Fatalf("first run missing final summary:\n%s", out1.String())
	}

	out2, stop2, errc2, url2 := startServe()
	if !strings.Contains(out2.String(), "resumed from checkpoint") ||
		!strings.Contains(out2.String(), "ingested=8") {
		t.Fatalf("second run missing resume summary:\n%s", out2.String())
	}
	centers2 := getBody(url2, "/v1/centers")
	if centers2 != centers1 {
		t.Fatalf("resumed centers differ:\n%s\nvs\n%s", centers2, centers1)
	}
	stopServe(stop2, errc2, out2)
}

// TestRunServeEmptyShutdown: stopping a server that never ingested anything
// reports "none" instead of failing.
func TestRunServeEmptyShutdown(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	stop <- os.Interrupt // already pending: serve starts, then immediately drains
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"serve", "-addr", "127.0.0.1:0", "-k", "3"}, out, stop)
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("empty shutdown: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not shut down; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "final clustering: none") {
		t.Fatalf("empty-shutdown notice missing:\n%s", out.String())
	}
}

// TestRunServeMultiTenant drives the -tenants flags end to end: lazy tenant
// creation over HTTP, the registry listing, per-tenant checkpoint files on
// graceful shutdown, and the per-tenant resume log on the next boot.
func TestRunServeMultiTenant(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "serve.ckpt")
	args := []string{"serve", "-addr", "127.0.0.1:0", "-k", "4", "-shards", "2",
		"-tenants", "3", "-default-k", "2", "-checkpoint", ckpt, "-checkpoint-keep", "2"}

	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(args, out, stop) }()
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := serveURLRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"points": [[0,0],[5,5]]}`); code != http.StatusAccepted {
		t.Fatalf("default ingest status %d", code)
	}
	if code := post(`{"tenant": "web", "points": [[100,100],[105,105]]}`); code != http.StatusAccepted {
		t.Fatalf("tenant ingest status %d", code)
	}
	var reg struct {
		Tenants []struct {
			Name string `json:"name"`
			K    int    `json:"k"`
		} `json:"tenants"`
	}
	resp, err := http.Get(url + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(reg.Tenants) != 2 || reg.Tenants[1].Name != "web" || reg.Tenants[1].K != 2 {
		t.Fatalf("registry: %+v", reg.Tenants)
	}

	stop <- os.Interrupt
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not shut down; output:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "serve.ckpt.d", "web.ckpt")); err != nil {
		t.Fatalf("per-tenant checkpoint missing: %v", err)
	}

	// Reboot: both tenants resume warm, each logged.
	out2 := &syncBuffer{}
	stop2 := make(chan os.Signal, 1)
	errc2 := make(chan error, 1)
	go func() { errc2 <- run(args, out2, stop2) }()
	for !strings.Contains(out2.String(), "serving on") {
		select {
		case err := <-errc2:
			t.Fatalf("reboot exited early: %v\noutput:\n%s", err, out2.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("reboot never listened; output:\n%s", out2.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	boot := out2.String()
	if !strings.Contains(boot, "resumed from checkpoint "+ckpt) ||
		!strings.Contains(boot, "tenant web resumed from checkpoint") {
		t.Fatalf("resume log missing tenants:\n%s", boot)
	}
	stop2 <- os.Interrupt
	if err := <-errc2; err != nil {
		t.Fatalf("reboot shutdown: %v", err)
	}
}

// TestRunServeTelemetryFlags drives the observability surface through the
// CLI: the startup banner names the effective config, -log-format json makes
// the structured log machine-readable, /metrics serves Prometheus text and
// -pprof mounts the profiling handlers.
func TestRunServeTelemetryFlags(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"serve", "-addr", "127.0.0.1:0", "-k", "3",
			"-pprof", "-slow-request", "1ns", "-log-format", "json"}, out, stop)
	}()
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := serveURLRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Startup banner: one JSON log line carrying the full effective config,
	// defaults resolved (queue depth was never set, so it must read 64).
	var banner map[string]any
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, `"serve config"`) {
			continue
		}
		if err := json.Unmarshal([]byte(line), &banner); err != nil {
			t.Fatalf("banner line %q: %v", line, err)
		}
		break
	}
	if banner == nil {
		t.Fatalf("no serve config banner in output:\n%s", out.String())
	}
	for key, want := range map[string]any{
		"k": float64(3), "queue": float64(64), "telemetry": true,
		"pprof": true, "log_format": "json", "slow_request": "1ns",
	} {
		if banner[key] != want {
			t.Fatalf("banner[%q] = %v, want %v\nbanner: %v", key, banner[key], want, banner)
		}
	}

	resp, err := http.Post(url+"/v1/ingest", "application/json",
		strings.NewReader(`{"points": [[0,0],[5,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// -slow-request 1ns means every request is "slow": the structured log
	// must carry a per-stage breakdown for the ingest. The trace finishes
	// (histogram observe, then log) after the response is written, so this
	// poll also orders the /metrics scrape below after the observation.
	slowDeadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), `"slow request"`) {
		if time.Now().After(slowDeadline) {
			t.Fatalf("no slow request log; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /metrics speaks Prometheus text exposition and carries the request
	// histograms the ingest above just populated.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	if _, err := mb.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d body %s", resp.StatusCode, mb.String())
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE kcenter_request_duration_seconds histogram",
		`kcenter_request_duration_seconds_count{route="ingest"} 1`,
		"kcenter_telemetry_armed 1",
	} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb.String())
		}
	}

	// -pprof mounts the index.
	resp, err = http.Get(url + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}

	stop <- os.Interrupt
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not shut down; output:\n%s", out.String())
	}

	// A bogus log format is a startup error.
	if err := run([]string{"serve", "-log-format", "yaml"}, &syncBuffer{}, nil); err == nil {
		t.Fatal("bogus -log-format accepted")
	}
}

// TestRunServeFaultsFlag: -faults arms the injection framework for the
// serve process — the first request trips the error-once decode rule, the
// second sails through — and a malformed spec refuses to start.
func TestRunServeFaultsFlag(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"serve", "-addr", "127.0.0.1:0", "-k", "3",
			"-faults", "server.decode=error-once"}, out, stop)
	}()
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := serveURLRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "FAULT INJECTION ARMED") {
		t.Fatalf("armed banner missing:\n%s", out.String())
	}
	post := func() int {
		resp, err := http.Post(url+"/v1/ingest", "application/json",
			strings.NewReader(`{"points": [[1,2],[3,4]]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusBadRequest {
		t.Fatalf("first ingest under error-once = %d, want 400", code)
	}
	if code := post(); code != http.StatusAccepted {
		t.Fatalf("second ingest = %d, want 202", code)
	}
	stop <- os.Interrupt
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not shut down; output:\n%s", out.String())
	}

	// A malformed spec is a startup error, not a silently unarmed server.
	if err := run([]string{"serve", "-faults", "nonsense"}, &syncBuffer{}, nil); err == nil {
		t.Fatal("malformed -faults spec accepted")
	}
}
