// Multi-node convergence, driven exactly like an operator would: two serve
// stacks on real loopback listeners, each started with -node-id and
// -replicate-peers pointing at the other, fed disjoint halves of a stream.
// Gossip must converge the two to byte-identical center sets over the union;
// killing one node must leave the survivor serving that union (follower
// promotion is nothing more than continuing to serve the last folded state).

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// reservePort grabs a free loopback port and releases it for the serve
// stack to re-bind. The window between Close and the re-listen is racy in
// principle, but the kernel does not hand the port out again immediately.
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// replicaStats is the slice of /v1/stats these tests read.
type replicaStats struct {
	IngestedPoints int64 `json:"ingested_points"`
	Replication    *struct {
		Peers []struct {
			Pushes      int64 `json:"pushes"`
			Errors      int64 `json:"errors"`
			Quarantined bool  `json:"quarantined"`
		} `json:"peers"`
		Origins []struct {
			Origin  string `json:"origin"`
			Version uint64 `json:"version"`
			Merges  int64  `json:"merges"`
		} `json:"origins"`
	} `json:"replication"`
}

func TestRunServeReplicationConvergesAndPromotes(t *testing.T) {
	addrA, addrB := reservePort(t), reservePort(t)

	type node struct {
		out  *syncBuffer
		stop chan os.Signal
		errc chan error
		url  string
	}
	start := func(id, addr, peer string) *node {
		t.Helper()
		n := &node{out: &syncBuffer{}, stop: make(chan os.Signal, 1), errc: make(chan error, 1)}
		go func() {
			n.errc <- run([]string{"serve", "-addr", addr, "-k", "6", "-shards", "2",
				"-node-id", id, "-replicate-peers", "http://" + peer,
				"-replicate-interval", "20ms"}, n.out, n.stop)
		}()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if m := serveURLRe.FindStringSubmatch(n.out.String()); m != nil {
				n.url = m[1]
				return n
			}
			select {
			case err := <-n.errc:
				t.Fatalf("serve %s exited early: %v\noutput:\n%s", id, err, n.out.String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("serve %s never listened; output:\n%s", id, n.out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	a := start("a", addrA, addrB)
	b := start("b", addrB, addrA)

	post := func(url, path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.String()
	}
	getInto := func(url, path string, out any) int {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	waitUntil := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Disjoint streams: node a sees the cluster near the origin, node b the
	// cluster near (100,100). Neither node alone can cover both regions.
	ingest := func(n *node, cx, cy float64) {
		var pts []string
		for i := 0; i < 40; i++ {
			pts = append(pts, fmt.Sprintf("[%g,%g]", cx+float64(i%7)/10, cy+float64(i%5)/10))
		}
		resp, body := post(n.url, "/v1/ingest", `{"points": [`+strings.Join(pts, ",")+`]}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest: %d %s", resp.StatusCode, body)
		}
		waitUntil("ingest drained", func() bool {
			var st replicaStats
			getInto(n.url, "/v1/stats", &st)
			return st.IngestedPoints >= 40
		})
	}
	ingest(a, 0, 0)
	ingest(b, 100, 100)

	// Convergence: both nodes fold the other's state and serve the same
	// centers byte for byte.
	centersOf := func(n *node) ([][]float64, string) {
		var cr struct {
			Centers [][]float64 `json:"centers"`
		}
		if code := getInto(n.url, "/v1/centers", &cr); code != http.StatusOK {
			return nil, ""
		}
		raw, err := json.Marshal(cr.Centers)
		if err != nil {
			t.Fatal(err)
		}
		return cr.Centers, string(raw)
	}
	var centers [][]float64
	waitUntil("byte-identical converged centers", func() bool {
		ca, rawA := centersOf(a)
		_, rawB := centersOf(b)
		if rawA == "" || rawA != rawB {
			return false
		}
		centers = ca
		return true
	})
	var nearOrigin, nearFar bool
	for _, c := range centers {
		d0 := math.Hypot(c[0], c[1])
		d1 := math.Hypot(c[0]-100, c[1]-100)
		nearOrigin = nearOrigin || d0 < 10
		nearFar = nearFar || d1 < 10
	}
	if !nearOrigin || !nearFar {
		t.Fatalf("converged centers do not cover both regions: %v", centers)
	}
	var st replicaStats
	getInto(b.url, "/v1/stats", &st)
	if st.Replication == nil || len(st.Replication.Origins) != 1 || st.Replication.Origins[0].Origin != "a" {
		t.Fatalf("node b stats missing folded origin a: %+v", st.Replication)
	}

	// Kill the primary. The follower keeps serving the union — including
	// the dead node's region, which it never ingested — and books the now-
	// failing pushes against the peer without degrading its own serving.
	a.stop <- os.Interrupt
	select {
	case err := <-a.errc:
		if err != nil {
			t.Fatalf("node a shutdown: %v\noutput:\n%s", err, a.out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("node a did not shut down; output:\n%s", a.out.String())
	}
	resp, body := post(b.url, "/v1/assign", `{"points": [[0.3,0.3],[100.2,100.3]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("survivor assign after primary death: %d %s", resp.StatusCode, body)
	}
	var ar struct {
		Assignments []struct {
			Center   int     `json:"center"`
			Distance float64 `json:"distance"`
		} `json:"assignments"`
	}
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Assignments) != 2 || ar.Assignments[0].Distance > 5 || ar.Assignments[1].Distance > 5 {
		t.Fatalf("survivor does not cover the dead node's region: %s", body)
	}
	// The survivor's centers are exactly the converged set: promotion is
	// continuing to serve the last folded union.
	if _, raw := centersOf(b); raw == "" {
		t.Fatal("survivor stopped serving centers")
	} else {
		want, _ := json.Marshal(centers)
		if raw != string(want) {
			t.Fatalf("survivor centers moved after primary death\nwant %s\ngot  %s", want, raw)
		}
	}
	// Gossip is version-gated, so the survivor attempts no push until its
	// own state moves; new local ingest makes one due, and it fails against
	// the dead peer — booked on the peer, never degrading the survivor.
	ingest(b, 200, 200)
	waitUntil("survivor books failed pushes", func() bool {
		var st replicaStats
		getInto(b.url, "/v1/stats", &st)
		return st.Replication != nil && len(st.Replication.Peers) == 1 && st.Replication.Peers[0].Errors >= 1
	})
	if code := getInto(b.url, "/v1/centers", nil); code != http.StatusOK {
		t.Fatalf("survivor centers after failed pushes: %d", code)
	}

	b.stop <- os.Interrupt
	select {
	case err := <-b.errc:
		if err != nil {
			t.Fatalf("node b shutdown: %v\noutput:\n%s", err, b.out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("node b did not shut down; output:\n%s", b.out.String())
	}
}
