package kcenter

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestServerFacadeLifecycle exercises NewServer through a full ingest →
// assign → Shutdown cycle over real HTTP, checking the final result carries
// the same certified-bound semantics as Stream.Finish.
func TestServerFacadeLifecycle(t *testing.T) {
	srv, err := NewServer(3, ServerOptions{Shards: 2, MaxBatch: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	points := [][]float64{{0, 0}, {1, 0}, {0, 1}, {50, 50}, {51, 50}, {100, 0}}
	b, _ := json.Marshal(map[string][][]float64{"points": points})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// Poll assignment until ingestion drains.
	q, _ := json.Marshal(map[string][][]float64{"points": {{0.2, 0.2}}})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/assign", "application/json", bytes.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("assign never succeeded (last status %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ts.Close()
	res, err := srv.Shutdown(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != int64(len(points)) {
		t.Fatalf("ingested %d, want %d", res.Ingested, len(points))
	}
	if len(res.Centers) == 0 || len(res.Centers) > 3 {
		t.Fatalf("%d centers, want 1..3", len(res.Centers))
	}
	if res.ApproxFactor != 10 {
		t.Fatalf("approx factor %g, want 10 for sharded ingestion", res.ApproxFactor)
	}
	if res.LowerBound > res.Radius {
		t.Fatalf("certificate inverted: lower %g > radius %g", res.LowerBound, res.Radius)
	}
	// The returned centers must cover the ingested points within Radius.
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatal(err)
	}
	realized, err := RadiusPoints(ds, res.Centers)
	if err != nil {
		t.Fatal(err)
	}
	if realized > res.Radius+1e-12 {
		t.Fatalf("realized radius %g beyond certified bound %g", realized, res.Radius)
	}

	if _, err := srv.Shutdown(context.Background()); err == nil {
		t.Fatal("second Shutdown should fail")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0, ServerOptions{}); err == nil {
		t.Fatal("k=0 should fail")
	}
}

// TestServerFacadeMultiTenant exercises the multi-tenant facade surface:
// named tenants route to isolated clusterings, per-tenant checkpoints
// land in the tenant directory, and TenantRestores reports every warm
// start on the next boot.
func TestServerFacadeMultiTenant(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "serve.ckpt")
	opts := ServerOptions{Shards: 2, MaxTenants: 3, DefaultK: 2, CheckpointPath: ckpt}
	srv, err := NewServer(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	post := func(tenant string, pts [][]float64) int {
		t.Helper()
		b, _ := json.Marshal(map[string]any{"points": pts, "tenant": tenant})
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("", [][]float64{{0, 0}, {9, 9}}); code != http.StatusAccepted {
		t.Fatalf("default ingest status %d", code)
	}
	if code := post("alpha", [][]float64{{100, 100}, {109, 109}}); code != http.StatusAccepted {
		t.Fatalf("alpha ingest status %d", code)
	}
	ts.Close()
	if _, err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "serve.ckpt.d", "alpha.ckpt")); err != nil {
		t.Fatalf("per-tenant checkpoint missing: %v", err)
	}

	srv2, err := NewServer(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	restores := srv2.TenantRestores()
	if len(restores) != 2 {
		t.Fatalf("restores: %+v", restores)
	}
	if restores[0].Tenant != "default" || restores[1].Tenant != "alpha" {
		t.Fatalf("restore order: %+v", restores)
	}
	if restores[1].Ingested != 2 {
		t.Fatalf("alpha restored %d points, want 2", restores[1].Ingested)
	}
	if rs := srv2.Restored(); rs == nil || rs.Tenant != "default" {
		t.Fatalf("default restore: %+v", rs)
	}
}
