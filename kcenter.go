// Package kcenter is a parallel k-center clustering library reproducing
// McClintock & Wirth, "Efficient Parallel Algorithms for k-Center
// Clustering" (ICPP 2016).
//
// The k-center problem asks for at most k centers, chosen among the input
// points, minimizing the maximum distance from any point to its nearest
// center. It is NP-hard; 2 is the best possible approximation factor, and
// the classic sequential algorithms achieving it do not parallelize
// directly. This package provides:
//
//   - Gonzalez: the sequential greedy 2-approximation (the paper's GON),
//     O(k·n).
//   - MRG: "MapReduce Gonzalez" — the paper's multi-round parallel
//     algorithm. Two rounds give a 4-approximation; i rounds give 2(i+1).
//   - EIM: the paper's generalization of Ene–Im–Moseley iterative sampling,
//     with the pivot parameter φ trading approximation confidence for speed
//     (φ = 8 reproduces the original 10-approximation algorithm).
//   - Stream: insertion-only streaming k-center via the doubling algorithm,
//     with optional sharded concurrent ingestion. Memory is O(s·k),
//     independent of the stream length — points are never materialized.
//   - Server: an HTTP/JSON serving layer over the same streaming substrate.
//     POST /v1/ingest feeds batches in (bounded queue with 429/Retry-After
//     load shedding at the watermark), POST /v1/assign answers batch
//     nearest-center queries against consistent snapshots, GET /v1/centers
//     and /v1/stats expose the clustering and service counters. Optional
//     checkpoint/restore persistence lets a restarted server resume its
//     clustering warm. See NewServer and the kcenter serve subcommand.
//
// Parallel algorithms run on a simulated MapReduce cluster (m machines,
// default 50 as in the paper); reported runtimes follow the paper's cost
// model: per-round maximum over machines, summed over rounds.
//
// Quick start (batch):
//
//	ds, _ := kcenter.NewDataset(points)          // [][]float64, equal dims
//	res, _ := kcenter.MRG(ds, 10, kcenter.MRGOptions{})
//	fmt.Println(res.Radius, res.Centers)
//
// # Streaming
//
// NewStream opens an ingester that never stores the points it sees. Each of
// its s shards (goroutine-owned, fed over channels) runs the doubling
// algorithm: it keeps at most k centers and a radius r such that every
// point seen so far lies within 4r of a center and r ≤ 2·OPT; on overflow r
// doubles and nearby centers merge. Finish reclusters the ≤ s·k shard
// centers with Gonzalez — the same two-level composition as the paper's MRG,
// with shards in place of mapper partitions — and returns centers covering
// the whole stream within 8·OPT (one shard) or 10·OPT (many shards):
//
//	st, _ := kcenter.NewStream(10, kcenter.StreamOptions{Shards: 4})
//	for row := range feed {                      // any insertion-only source
//		st.Push(row)                             // safe from many goroutines
//	}
//	res, _ := st.Finish()
//	fmt.Println(res.Radius, res.Centers)         // certified coverage bound
//
// Push is safe for concurrent producers; call Finish once, after all
// producers have returned. StreamResult centers are coordinates (copies of
// genuine input points), not dataset indices — there is no dataset.
package kcenter

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"kcenter/internal/assign"
	"kcenter/internal/core"
	"kcenter/internal/dataset"
	"kcenter/internal/eim"
	"kcenter/internal/mapreduce"
	"kcenter/internal/metric"
	"kcenter/internal/mrg"
	"kcenter/internal/server"
	"kcenter/internal/stream"
)

// Dataset holds n points of equal dimension in a contiguous layout.
type Dataset struct {
	m *metric.Dataset
}

// NewDataset copies a slice of equal-length points into a Dataset.
func NewDataset(points [][]float64) (*Dataset, error) {
	m, err := metric.FromPoints(points)
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

// ReadCSV loads a numeric matrix from comma-separated text (UCI-style
// files). Non-numeric columns are skipped automatically.
func ReadCSV(r io.Reader) (*Dataset, error) {
	m, err := dataset.LoadCSV(r, dataset.LoadCSVOptions{})
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

// Uniform generates n points uniformly in a 2-D square of side 100 — the
// paper's UNIF family.
func Uniform(n int, seed uint64) *Dataset {
	return &Dataset{m: dataset.Unif(dataset.UnifConfig{N: n, Seed: seed}).Points}
}

// Clustered generates the paper's GAU family: kPrime tight Gaussian clusters
// (σ = 0.1) with centers spread over a 2-D square of side 100.
func Clustered(n, kPrime int, seed uint64) *Dataset {
	return &Dataset{m: dataset.Gau(dataset.GauConfig{N: n, KPrime: kPrime, Seed: seed}).Points}
}

// Len returns the number of points.
func (d *Dataset) Len() int { return d.m.N }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.m.Dim }

// At returns the coordinates of point i. The slice aliases internal storage;
// treat it as read-only.
func (d *Dataset) At(i int) []float64 { return d.m.At(i) }

// Result describes a k-center solution.
type Result struct {
	// Centers are indices into the dataset.
	Centers []int
	// Radius is the covering radius: the k-center objective value.
	Radius float64
	// Assignment[i] is the position in Centers of point i's nearest center.
	Assignment []int
	// Rounds is the number of MapReduce rounds used (0 for Gonzalez).
	Rounds int
	// ApproxFactor is the guarantee under which the result was produced
	// (2 for Gonzalez; 2(i+1) for MRG with i parallel iterations; 10 w.s.p.
	// for EIM with φ ≥ 8).
	ApproxFactor float64
	// SimulatedSeconds is the simulated parallel makespan under the paper's
	// cost model (0 for Gonzalez, which is not a MapReduce algorithm).
	SimulatedSeconds float64
}

// Gonzalez runs the sequential greedy 2-approximation (GON).
func Gonzalez(d *Dataset, k int) (*Result, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	// The traversal carries the assignment through its own relaxation
	// passes, so no post-hoc assign.Evaluate scan (a second O(n·k) pass) is
	// needed; the result is bit-identical either way.
	res := core.GonzalezAssign(d.m, k, core.Options{First: 0})
	return &Result{
		Centers:      res.Centers,
		Radius:       res.Radius,
		Assignment:   res.Assignment,
		ApproxFactor: 2,
	}, nil
}

// MRGOptions configures the parallel MRG run.
type MRGOptions struct {
	// Machines is the simulated cluster size (default 50, as in the paper).
	Machines int
	// Capacity is the per-machine capacity in points; 0 picks the smallest
	// capacity that permits the 2-round, 4-approximation case.
	Capacity int
	// Seed drives the arbitrary partition and seeding choices.
	Seed uint64
}

// MRG runs the paper's multi-round parallel Gonzalez (Algorithm 1).
func MRG(d *Dataset, k int, opt MRGOptions) (*Result, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	res, err := mrg.Run(d.m, mrg.Config{
		K:       k,
		Cluster: mapreduce.Config{Machines: opt.Machines, Capacity: opt.Capacity},
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Centers:          res.Centers,
		Radius:           res.Radius,
		Assignment:       res.Evaluation.Assignment,
		Rounds:           res.MapReduceRounds,
		ApproxFactor:     res.ApproxFactor,
		SimulatedSeconds: res.Stats.SimulatedWall().Seconds(),
	}, nil
}

// EIMOptions configures the sampling algorithm.
type EIMOptions struct {
	// Machines is the simulated cluster size (default 50).
	Machines int
	// Phi is the pivot-selection parameter; 0 means the original φ = 8.
	// Values above 5.15 retain the probabilistic 10-approximation; smaller
	// values are faster with weaker guarantees (paper §6, §8.3).
	Phi float64
	// Epsilon is the sampling exponent; 0 means the paper's 0.1.
	Epsilon float64
	// Seed drives all sampling.
	Seed uint64
}

// EIM runs the paper's generalized iterative-sampling algorithm
// (Algorithms 2–3). When k is large relative to n the sampling loop never
// engages and EIM degenerates to Gonzalez on the whole input, as the paper
// observes in Figures 3b and 4b.
func EIM(d *Dataset, k int, opt EIMOptions) (*Result, error) {
	if err := checkArgs(d, k); err != nil {
		return nil, err
	}
	res, err := eim.Run(d.m, eim.Config{
		K:       k,
		Phi:     opt.Phi,
		Epsilon: opt.Epsilon,
		Cluster: mapreduce.Config{Machines: opt.Machines},
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	factor := 10.0
	if opt.Phi > 0 && opt.Phi <= 5.15 {
		factor = 0 // below the provable threshold: no guarantee (paper §6)
	}
	return &Result{
		Centers:          res.Centers,
		Radius:           res.Radius,
		Assignment:       res.Evaluation.Assignment,
		Rounds:           res.MapReduceRounds,
		ApproxFactor:     factor,
		SimulatedSeconds: res.Stats.SimulatedWall().Seconds(),
	}, nil
}

// StreamOptions configures a streaming ingester.
type StreamOptions struct {
	// Shards is the number of concurrent shard goroutines; 0 means 1.
	// More shards raise ingestion throughput and loosen the certified
	// approximation factor from 8 to 10; with a single producer and a fixed
	// shard count the result is deterministic.
	Shards int
	// Metric names the distance: "" or "euclidean" (fast path),
	// "manhattan", or "chebyshev". The guarantees hold for any metric
	// satisfying the triangle inequality.
	Metric string
	// Buffer is the per-shard channel depth; 0 means 256.
	Buffer int
}

// Stream ingests an insertion-only point stream in O(Shards·k) memory.
// Create with NewStream, feed with Push (safe for concurrent producers) and
// close with Finish.
type Stream struct {
	sh     *stream.Sharded
	shards int
}

// StreamResult describes a finished stream's k-center solution.
type StreamResult struct {
	// Centers holds the ≤ k center coordinates; every row is a copy of a
	// genuine input point. (Unlike Result.Centers these are not dataset
	// indices — the stream never materializes a dataset.)
	Centers [][]float64
	// Radius is the certified coverage bound: every ingested point lies
	// within Radius of some center. It is at most ApproxFactor·OPT.
	Radius float64
	// LowerBound is a certified lower bound on the optimal radius;
	// LowerBound ≤ OPT ≤ Radius brackets the true objective.
	LowerBound float64
	// ApproxFactor is the guarantee under which Radius was produced: 8 for
	// a single shard, 10 for sharded ingestion.
	ApproxFactor float64
	// Ingested is the number of points pushed.
	Ingested int64
}

// NewStream opens a streaming ingester for at most k centers.
func NewStream(k int, opt StreamOptions) (*Stream, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kcenter: k must be >= 1, got %d", k)
	}
	var m metric.Interface
	switch opt.Metric {
	case "", "euclidean":
		m = nil
	case "manhattan":
		m = metric.Manhattan{}
	case "chebyshev":
		m = metric.Chebyshev{}
	default:
		return nil, fmt.Errorf("kcenter: unknown metric %q (want euclidean, manhattan or chebyshev)", opt.Metric)
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 1
	}
	sh, err := stream.NewSharded(stream.ShardedConfig{
		K:      k,
		Shards: shards,
		Buffer: opt.Buffer,
		Metric: m,
	})
	if err != nil {
		return nil, err
	}
	return &Stream{sh: sh, shards: shards}, nil
}

// Push ingests one point. The coordinates are copied; the caller may reuse
// the slice. Push is safe for concurrent use by multiple producers.
func (s *Stream) Push(p []float64) error { return s.sh.Push(p) }

// Centers returns a snapshot of the current ≤ k centers while ingestion is
// still running, so live traffic can query the clustering without waiting
// for Finish. Each shard's state is read under a read lock; points still
// buffered inside the ingester are not yet reflected. The returned slices
// are copies. It is safe to call concurrently with Push and returns an
// error before the first point has been ingested.
func (s *Stream) Centers() ([][]float64, error) {
	snap, err := s.sh.Snapshot()
	if err != nil {
		return nil, err
	}
	centers := make([][]float64, snap.Centers.N)
	for i := range centers {
		centers[i] = append([]float64(nil), snap.Centers.At(i)...)
	}
	return centers, nil
}

// Finish drains the shards, merges their centers and returns the solution.
// Call it exactly once, after every producer goroutine has returned.
func (s *Stream) Finish() (*StreamResult, error) {
	res, err := s.sh.Finish()
	if err != nil {
		return nil, err
	}
	return newStreamResult(res, s.shards), nil
}

// newStreamResult converts an internal merged stream result to the facade
// type, copying the center coordinates out of internal storage.
func newStreamResult(res *stream.Result, shards int) *StreamResult {
	centers := make([][]float64, res.Centers.N)
	for i := range centers {
		centers[i] = append([]float64(nil), res.Centers.At(i)...)
	}
	factor := 8.0
	if shards > 1 {
		factor = 10
	}
	return &StreamResult{
		Centers:      centers,
		Radius:       res.Bound,
		LowerBound:   res.LowerBound,
		ApproxFactor: factor,
		Ingested:     res.Ingested,
	}
}

// ErrNothingIngested reports a Shutdown (or Finish) with no ingested data:
// there is no clustering to return, but nothing failed either. Detect it
// with errors.Is to distinguish an idle server from a real drain failure.
var ErrNothingIngested = stream.ErrEmpty

// ErrTenantFailed marks a tenant the server has taken out of rotation: its
// checkpoint failed to restore at startup, or a fault at runtime (an
// ingest-worker panic, a shard failure) degraded it. A degraded tenant
// keeps answering /v1/assign and /v1/centers from its last good snapshot,
// refuses new ingest with HTTP 409, and is excluded from checkpointing so
// the last good file on disk survives for the next restart. Errors
// returned by Shutdown for such a tenant wrap ErrTenantFailed; detect it
// with errors.Is. Siblings are unaffected — the containment boundary is
// the tenant. GET /v1/healthz lists degraded and failed tenants without
// failing readiness; GET /v1/tenants shows them with status "degraded" or
// "failed".
var ErrTenantFailed = server.ErrTenantFailed

// ServerOptions configures a clustering server.
type ServerOptions struct {
	// Shards is the number of concurrent ingestion shards; 0 means 1.
	Shards int
	// Buffer is the per-shard channel depth; 0 means the default.
	Buffer int
	// MaxBatch caps the points per ingest or assign request (0 = 4096);
	// larger batches are rejected with HTTP 413.
	MaxBatch int
	// QueueDepth bounds the ingest queue in batches (0 = 64). A full queue
	// is the service's overload watermark: ingest handlers wait up to
	// ShedAfter for space, then shed the batch.
	QueueDepth int
	// ShedAfter is how long an ingest request may wait at a full queue
	// before it is shed with HTTP 429 + Retry-After (0 = 1s). Negative
	// disables shedding: requests block until their context expires, which
	// can pin every server thread when producers are persistently over
	// capacity.
	ShedAfter time.Duration
	// CheckpointPath, when non-empty, enables persistence: the server
	// restores from this file on startup (if it exists) and checkpoints the
	// clustering state to it periodically and on Shutdown, so a restarted
	// server resumes with a warm clustering instead of re-clustering from
	// scratch. Checkpoints are O(Shards·k) and written atomically.
	CheckpointPath string
	// CheckpointInterval is the background checkpoint period (0 = 15s).
	// A checkpoint is written only when the center set changed since the
	// last one, so quiet periods write nothing.
	CheckpointInterval time.Duration
	// CheckpointKeep retains the last N checkpoints per tenant as
	// <path>.1 (newest) through <path>.N (oldest) so an operator can roll
	// back after a bad feed; 0 keeps no history.
	CheckpointKeep int
	// MaxTenants enables multi-tenant serving when > 0: requests carrying
	// an X-Kcenter-Tenant header (or a "tenant" body field) route to
	// independent per-tenant clusterings, lazily created on first ingest
	// contact until MaxTenants tenants exist (the implicit default tenant
	// counts toward the cap; tenants restored from checkpoints are
	// exempt). 0 serves the single default tenant only, byte-identical to
	// the pre-tenancy wire format.
	MaxTenants int
	// DefaultK is the center budget for lazily created tenants that do
	// not pin their own with the X-Kcenter-K header; 0 means k.
	DefaultK int
	// NodeID names this node in replication gossip: the origin label its
	// pushed states carry and the key peers file them under. Required with
	// ReplicatePeers; empty leaves the node an unlabeled receiver.
	NodeID string
	// ReplicatePeers lists peer server base URLs this node pushes every
	// tenant's exported clustering state to, once per ReplicateInterval,
	// so peers serve assign/centers against the union summary (followers
	// need no local ingest; merge correctness carries the sharded 10-approx
	// bound). Push failures quarantine the peer under capped backoff, never
	// the tenant. Empty disables pushing; POST /v1/replicate accepts
	// inbound states regardless.
	ReplicatePeers []string
	// ReplicateInterval is the replication push period (0 = 2s); staleness
	// on a healthy link is bounded by about one interval.
	ReplicateInterval time.Duration
	// Telemetry arms the process-wide telemetry registry: per-stage request
	// latency histograms served by GET /metrics (Prometheus text format)
	// and the p50/p99/max fields in /v1/stats. Disarmed, every
	// instrumentation point costs one atomic load.
	Telemetry bool
	// Pprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/ on the server's mux. Off by default.
	Pprof bool
	// SlowRequest, when > 0 (with Telemetry), logs any request at or above
	// the threshold as one structured line with its per-stage breakdown.
	SlowRequest time.Duration
	// CoalesceWindow bounds the gather window of the assign coalescer:
	// concurrent /v1/assign requests against the same snapshot version fuse
	// into one kernel pass (results bit-identical to solo execution, solo
	// latency unmoved — see ARCHITECTURE.md, "Read-path coalescing").
	// 0 means 200µs; negative disables coalescing.
	CoalesceWindow time.Duration
	// CoalesceMax caps the requests fused into one coalesced pass; a full
	// batch seals (and runs) before the window expires. 0 means 16.
	CoalesceMax int
}

// ServerRestore describes the warm start a server performed from its
// checkpoint; see Server.Restored.
type ServerRestore struct {
	// Tenant is the tenant the restored state belongs to ("default" for
	// the single-tenant path).
	Tenant string
	// Path is the checkpoint file the state came from.
	Path string
	// Created is when the checkpoint was captured.
	Created time.Time
	// Ingested is the number of points the restored clustering had seen.
	Ingested int64
	// Centers is the total retained center count across shards.
	Centers int
	// Dim is the restored point dimensionality.
	Dim int
	// CentersVersion is the restored center-set version counter (the
	// /v1/assign snapshot version resumes from here).
	CentersVersion uint64
}

// Server is an HTTP/JSON clustering service over a live stream: POST
// /v1/ingest feeds batches into a sharded streaming ingester, POST
// /v1/assign answers batch nearest-center queries against a consistent
// snapshot of the current clustering, GET /v1/centers and GET /v1/stats
// expose the centers and service counters, GET /v1/tenants the tenant
// registry, and GET /v1/healthz liveness/readiness (degraded tenants are
// reported but do not fail readiness — see ErrTenantFailed for the
// degraded-tenant lifecycle). With MaxTenants > 0 one server multiplexes many independent
// clusterings: requests route to a tenant via the X-Kcenter-Tenant header
// (unnamed requests hit the implicit default tenant, byte-identical to
// single-tenant serving), each tenant owning its own ingester, queue,
// snapshot cache and checkpoint file. With a CheckpointPath it persists
// every tenant's clustering and resumes them warm on restart (see Restored
// and TenantRestores). Create with NewServer, mount Handler on an
// http.Server, and call Shutdown exactly once to drain in-flight batches
// and flush the final clustering.
type Server struct {
	svc    *server.Service
	shards int
}

// NewServer starts the clustering service for at most k centers. It begins
// serving traffic as soon as its Handler is mounted; the clustering runs on
// the same streaming substrate as NewStream (8-approx single shard,
// 10-approx sharded).
func NewServer(k int, opt ServerOptions) (*Server, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kcenter: k must be >= 1, got %d", k)
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 1
	}
	svc, err := server.New(server.Config{
		K:                  k,
		Shards:             shards,
		Buffer:             opt.Buffer,
		MaxBatch:           opt.MaxBatch,
		QueueDepth:         opt.QueueDepth,
		ShedAfter:          opt.ShedAfter,
		CheckpointPath:     opt.CheckpointPath,
		CheckpointInterval: opt.CheckpointInterval,
		CheckpointKeep:     opt.CheckpointKeep,
		MaxTenants:         opt.MaxTenants,
		DefaultK:           opt.DefaultK,
		NodeID:             opt.NodeID,
		ReplicatePeers:     opt.ReplicatePeers,
		ReplicateInterval:  opt.ReplicateInterval,
		Telemetry:          opt.Telemetry,
		Pprof:              opt.Pprof,
		SlowRequest:        opt.SlowRequest,
		CoalesceWindow:     opt.CoalesceWindow,
		CoalesceMax:        opt.CoalesceMax,
	})
	if err != nil {
		return nil, err
	}
	return &Server{svc: svc, shards: shards}, nil
}

// Restored reports the warm start this server performed from its configured
// checkpoint, or nil if it started cold (no CheckpointPath, or the file did
// not exist yet). A non-nil result means ingestion and queries resume from
// exactly the checkpointed clustering: same centers, bounds and version.
func (s *Server) Restored() *ServerRestore {
	rs := s.svc.Restored()
	if rs == nil {
		return nil
	}
	out := newServerRestore(rs)
	return &out
}

// TenantRestores reports every warm start the server performed, one entry
// per tenant restored from its own checkpoint file (the default tenant
// included), default first, then by tenant name. Empty on a fully cold
// start. Tenants whose checkpoint failed to restore are quarantined — they
// refuse traffic with a typed error while every sibling serves — and do
// not appear here; the GET /v1/tenants listing names them with status
// "failed".
func (s *Server) TenantRestores() []ServerRestore {
	rs := s.svc.TenantRestores()
	out := make([]ServerRestore, len(rs))
	for i, r := range rs {
		out[i] = newServerRestore(r)
	}
	return out
}

func newServerRestore(rs *server.RestoreSummary) ServerRestore {
	return ServerRestore{
		Tenant:         rs.Tenant,
		Path:           rs.Path,
		Created:        rs.Created,
		Ingested:       rs.Ingested,
		Centers:        rs.Centers,
		Dim:            rs.Dim,
		CentersVersion: rs.CentersVersion,
	}
}

// Handler returns the service's HTTP handler (the /v1 API), ready to mount
// on any http.Server or mux.
func (s *Server) Handler() http.Handler { return s.svc.Handler() }

// Shutdown gracefully stops the service: new batches are rejected, queued
// batches are drained into the clustering, and the final merged result is
// returned — the same certified solution Finish returns for a Stream. When a
// CheckpointPath is configured, the fully drained state is checkpointed so
// the next start resumes warm. Shut the HTTP server down first so no request
// is still in flight. Call it exactly once; ctx bounds the drain. If the
// drain succeeded but the final checkpoint failed, Shutdown returns both the
// result and the error.
func (s *Server) Shutdown(ctx context.Context) (*StreamResult, error) {
	res, err := s.svc.Close(ctx)
	if res == nil {
		return nil, err
	}
	return newStreamResult(res, s.shards), err
}

// RadiusPoints evaluates the covering radius of explicit coordinate centers
// (e.g. a StreamResult's) over a materialized dataset.
func RadiusPoints(d *Dataset, centers [][]float64) (float64, error) {
	if d == nil || d.m == nil || d.m.N == 0 {
		return 0, fmt.Errorf("kcenter: empty dataset")
	}
	if len(centers) == 0 {
		return 0, fmt.Errorf("kcenter: no centers")
	}
	c, err := metric.FromPoints(centers)
	if err != nil {
		return 0, err
	}
	if c.Dim != d.m.Dim {
		return 0, fmt.Errorf("kcenter: center dimension %d, want %d", c.Dim, d.m.Dim)
	}
	return stream.Cover(d.m, c, nil), nil
}

// Radius evaluates the covering radius of an explicit center set.
func Radius(d *Dataset, centers []int) (float64, error) {
	if d == nil || d.m == nil || d.m.N == 0 {
		return 0, fmt.Errorf("kcenter: empty dataset")
	}
	if len(centers) == 0 {
		return 0, fmt.Errorf("kcenter: no centers")
	}
	for _, c := range centers {
		if c < 0 || c >= d.m.N {
			return 0, fmt.Errorf("kcenter: center index %d out of range [0,%d)", c, d.m.N)
		}
	}
	return assign.Radius(d.m, centers), nil
}

func checkArgs(d *Dataset, k int) error {
	if d == nil || d.m == nil || d.m.N == 0 {
		return fmt.Errorf("kcenter: empty dataset")
	}
	if k <= 0 {
		return fmt.Errorf("kcenter: k must be >= 1, got %d", k)
	}
	return nil
}
