#!/bin/sh
# Docs gate, part of `make check` (see scripts/check.sh). Four checks:
#
#   1. gofmt: no file may need reformatting.
#   2. Package comments: every package has exactly one package doc comment
#      (a comment block immediately above a `package` clause in a non-test
#      file). Zero means the package is undocumented; more than one means
#      godoc picks arbitrarily and the docs drift.
#   3. Link integrity: every repo-relative path in backticks or markdown
#      links in README.md and ARCHITECTURE.md must exist, and every
#      `make <target>` mentioned must be a real target in the Makefile.
#   4. Wire-format sync: every /v1/* route registered in internal/server
#      must be documented in README.md and examples/serving/README.md, so
#      the wire-format docs cannot silently fall behind the handler table.
#
# Exits non-zero with a list of violations.
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== docs gate: gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed:"
	echo "$unformatted"
	fail=1
fi

echo "== docs gate: package comments"
# For each non-test .go file, report "<dir> <file>" when the line directly
# above the package clause belongs to a comment; then require exactly one
# documented file per package directory.
docs_per_pkg="$(git ls-files '*.go' | grep -v '_test\.go$' | while read -r f; do
	awk -v f="$f" '
		/^\/\// { in_comment = 1; last = NR; next }
		/^package / { if (in_comment && last == NR - 1) { n = split(f, parts, "/"); dir = substr(f, 1, length(f) - length(parts[n]) - 1); if (dir == "") dir = "."; print dir, f }; exit }
		{ in_comment = 0 }
	' "$f"
done)"
for dir in $(git ls-files '*.go' | grep -v '_test\.go$' | xargs -n1 dirname | sort -u); do
	count="$(printf '%s\n' "$docs_per_pkg" | awk -v d="$dir" '$1 == d' | wc -l)"
	if [ "$count" -eq 0 ]; then
		echo "package $dir has no package comment"
		fail=1
	elif [ "$count" -gt 1 ]; then
		echo "package $dir has $count package comments (godoc will pick one arbitrarily):"
		printf '%s\n' "$docs_per_pkg" | awk -v d="$dir" '$1 == d { print "  " $2 }'
		fail=1
	fi
done

echo "== docs gate: README/ARCHITECTURE link integrity"
for doc in README.md ARCHITECTURE.md; do
	if [ ! -f "$doc" ]; then
		echo "$doc missing"
		fail=1
		continue
	fi
	# Candidate paths: backticked tokens and markdown link targets that look
	# like repo-relative files or directories (contain a '/' or a known doc
	# extension; no spaces, no URLs, no flags, no globs or placeholders).
	paths="$(grep -o '`[^`]*`\|]([^)]*)' "$doc" \
		| sed -e 's/^`//' -e 's/`$//' -e 's/^](//' -e 's/)$//' \
		| grep -E '^[A-Za-z0-9_./-]+$' \
		| grep -E '/|\.(md|json|sh|go|mod)$' \
		| grep -vE '^(https?:|/)' \
		| grep -vE '\.(ckpt|csv|data)$' \
		| sort -u)"
	for p in $paths; do
		if [ ! -e "$p" ]; then
			echo "$doc references $p, which does not exist"
			fail=1
		fi
	done
	# Backticked `make <target>` references must name real Makefile targets
	# (prose uses of the verb "make" are not references).
	for target in $(grep -oE '`make [a-z][a-z-]*' "$doc" | awk '{print $2}' | sort -u); do
		if ! grep -qE "^$target:" Makefile; then
			echo "$doc references 'make $target', which is not a Makefile target"
			fail=1
		fi
	done
done

echo "== docs gate: route sync (/v1 and /metrics)"
# The pprof mounts under /debug/pprof/ are deliberately outside this gate:
# they are the Go-standard surface, gated by a flag, not service API.
routes="$(grep -hoE 'HandleFunc\("(/v1/[a-z]+|/metrics)"' internal/server/*.go | sed -E 's/HandleFunc\("([^"]*)"/\1/' | sort -u)"
if [ -z "$routes" ]; then
	echo "no routes found in internal/server (extraction broken?)"
	fail=1
fi
for rt in $routes; do
	for doc in README.md examples/serving/README.md; do
		if ! grep -q "$rt" "$doc"; then
			echo "$doc does not document route $rt (registered in internal/server)"
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "docs gate FAILED"
	exit 1
fi
echo "docs gate OK"
