#!/bin/sh
# Benchmark-trajectory gate: runs the kernel, assignment, Gonzalez,
# streaming and serving benchmarks and emits BENCH_kernels.json with ns/op
# per benchmark, so every PR leaves a comparable perf record.
#
#   BENCHTIME=1x  (default) one iteration per benchmark: a compile +
#                 smoke pass, cheap enough for the tier-1 gate. The ns/op
#                 of a single iteration is noisy; the checked-in baseline
#                 is produced with BENCHTIME=2s.
#   OUT=path      output file (default BENCH_kernels.json in the repo root)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_kernels.json}"
PATTERN='^(BenchmarkKernel|BenchmarkEvaluate|BenchmarkGonzalez|BenchmarkStreamPush|BenchmarkShardedThroughput|BenchmarkServe)'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# No pipe here: POSIX sh has no pipefail, and piping through tee would let
# a failing `go test` (bench panic, broken TestMain) slip past set -e.
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count 1 \
	./internal/metric/ ./internal/assign/ ./internal/core/ ./internal/server/ . > "$tmp"
cat "$tmp"

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^pkg: / { pkg = $2 }
/^Benchmark/ && $3 ~ /^[0-9.]+$/ && $4 == "ns/op" {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	names[n] = name; pkgs[n] = pkg; ns[n] = $3; n++
}
END {
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench.sh\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"package\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s}%s\n", \
			pkgs[i], names[i], ns[i], (i < n-1 ? "," : "")
	}
	printf "  ]\n}\n"
}' "$tmp" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
