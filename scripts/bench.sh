#!/bin/sh
# Benchmark-trajectory gate: runs the kernel, assignment, Gonzalez,
# streaming and serving benchmarks and emits BENCH_kernels.json with ns/op
# per benchmark, so every PR leaves a comparable perf record.
#
# The parallel benchmarks (pooled Gonzalez traversal, sharded ingestion)
# are additionally swept with -cpu 1,4 so the baseline records how each
# scales with GOMAXPROCS, not just its single-core cost; every JSON entry
# carries the "gomaxprocs" it ran under (parsed from the -N name suffix Go
# appends), and the file header records the host's CPU count, so a 1-vCPU
# parity row is not misread as a scaling regression — see ARCHITECTURE.md,
# "Parallel execution model".
#
#   BENCHTIME=1x  (default) one iteration per benchmark: a compile +
#                 smoke pass, cheap enough for the tier-1 gate. The ns/op
#                 of a single iteration is noisy; the checked-in baseline
#                 is produced with BENCHTIME=2s.
#   OUT=path      output file (default BENCH_kernels.json in the repo root)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_kernels.json}"
# Serial suite: everything except the two parallel sweeps below.
PATTERN='^(BenchmarkKernel|BenchmarkEvaluate|BenchmarkGonzalezUNIF2D$|BenchmarkGonzalezGAU2D$|BenchmarkGonzalez$|BenchmarkStreamPush|BenchmarkServe|BenchmarkReplicateMerge$)'
# Parallel suite, run under -cpu 1,4: the 1 row is the single-core
# baseline, the 4 row is what the worker pool / shard fan-out buys (or
# costs) at 4-way GOMAXPROCS on this host.
PAR_PATTERN='^(BenchmarkGonzalezParallel$|BenchmarkShardedThroughput$)'

NUM_CPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# No pipe here: POSIX sh has no pipefail, and piping through tee would let
# a failing `go test` (bench panic, broken TestMain) slip past set -e.
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count 1 \
	./internal/metric/ ./internal/assign/ ./internal/core/ ./internal/server/ . > "$tmp"
go test -run '^$' -bench "$PAR_PATTERN" -benchtime "$BENCHTIME" -count 1 \
	-cpu 1,4 ./internal/core/ . >> "$tmp"
cat "$tmp"

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" -v numcpu="$NUM_CPU" '
BEGIN { n = 0 }
/^pkg: / { pkg = $2 }
/^Benchmark/ && $3 ~ /^[0-9.]+$/ && $4 == "ns/op" {
	name = $1
	# Go suffixes benchmark names with -GOMAXPROCS when it is not 1; keep
	# it as a field rather than part of the name so the serial row and the
	# -cpu 4 row of the same benchmark stay joinable.
	procs = 1
	if (match(name, /-[0-9]+$/)) {
		procs = substr(name, RSTART + 1) + 0
		name = substr(name, 1, RSTART - 1)
	}
	names[n] = name; pkgs[n] = pkg; ns[n] = $3; procsOf[n] = procs; n++
}
END {
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench.sh\",\n"
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"num_cpu\": %d,\n", numcpu
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		printf "    {\"package\": \"%s\", \"name\": \"%s\", \"gomaxprocs\": %d, \"ns_per_op\": %s}%s\n", \
			pkgs[i], names[i], procsOf[i], ns[i], (i < n-1 ? "," : "")
	}
	printf "  ]\n}\n"
}' "$tmp" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks, num_cpu=$NUM_CPU)"
