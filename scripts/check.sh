#!/bin/sh
# Canonical tier-1 gate, mirroring `make check` for environments without
# make. Runs vet, build, the full test suite, the race-detector pass over
# the concurrent streaming ingestion path, the serving layer (including
# the multi-tenant create/ingest/assign/checkpoint race test), the
# fault-injection switchboard and the telemetry registry, a chaos smoke
# (the fault-injection storm with its four robustness assertions), a
# bench smoke, and the docs gate (scripts/docscheck.sh).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./internal/stream/... ./internal/server/... ./internal/fault/... ./internal/obs/..."
go test -race -short ./internal/stream/... ./internal/server/... ./internal/fault/... ./internal/obs/...

# Fuzz gate: a short random-exploration budget per native fuzz target on
# top of the committed seed corpora; any crasher fails the gate.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz gate (5 targets, $FUZZTIME each)"
go test -run '^$' -fuzz '^FuzzDecodeIngest$' -fuzztime "$FUZZTIME" ./internal/server
go test -run '^$' -fuzz '^FuzzDecodeAssign$' -fuzztime "$FUZZTIME" ./internal/server
go test -run '^$' -fuzz '^FuzzDecodeReplicate$' -fuzztime "$FUZZTIME" ./internal/server
go test -run '^$' -fuzz '^FuzzCheckpointDecode$' -fuzztime "$FUZZTIME" ./internal/checkpoint
go test -run '^$' -fuzz '^FuzzParseSpec$' -fuzztime "$FUZZTIME" ./internal/fault

# Chaos smoke: shard panics, ingest delays and checkpoint fsync failures
# fire under mixed traffic; the experiment enforces its four robustness
# assertions internally, so a zero exit is the pass.
echo "== chaos smoke (cmd/experiments -exp chaos -scale 10)"
go run ./cmd/experiments -exp chaos -scale 10

# One iteration of every tracked benchmark: proves the suite compiles and
# runs and that the JSON emitter works, without clobbering the committed
# BENCH_kernels.json baseline (regenerate that with `make bench BENCHTIME=2s`
# or `BENCHTIME=2s sh scripts/bench.sh` when landing a perf change).
echo "== bench smoke (scripts/bench.sh, BENCHTIME=1x)"
OUT="${TMPDIR:-/tmp}/BENCH_kernels.smoke.json" sh scripts/bench.sh

echo "== docs gate (scripts/docscheck.sh)"
sh scripts/docscheck.sh

echo "OK"
