#!/bin/sh
# Canonical tier-1 gate, mirroring `make check` for environments without
# make. Runs vet, build, the full test suite, and the race-detector pass
# over the concurrent streaming ingestion path.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./internal/stream/..."
go test -race -short ./internal/stream/...

echo "OK"
