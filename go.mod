module kcenter

go 1.21
